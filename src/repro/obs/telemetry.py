"""Bit-transparent telemetry: counters, gauges, histograms, and spans.

The stack spans six layers (vectorized decoder, PHY codec sessions, link
transport, MAC cells, the city-scale network, and the serve reactor), and
until now the only visibility into a run was each subsystem's terminal
result dataclass.  This module is the shared sink those layers report into:
a registry of **counters**, **gauges**, and **fixed-bucket histograms**
keyed by ``(name, labels)``, plus a **span** API that stamps timed sections
with both the :class:`~repro.link.events.EventScheduler` symbol-time clock
and wall-clock.

Two contracts make it safe to leave the instrumentation in the hot paths:

* **Zero cost when disabled.**  The process-global sink defaults to
  :data:`NULL_TELEMETRY`, a no-op singleton whose ``enabled`` flag is
  ``False``.  Instrumented classes capture :func:`current` once at
  construction and guard multi-stat blocks with ``if tel.enabled:`` — the
  disabled path is one attribute read per seam, never per symbol.
  Telemetry must therefore be installed (:func:`set_current`) *before*
  constructing the simulation objects it should observe; the CLI does this.

* **Bit-transparency.**  The registry never draws from any rng, never
  schedules or cancels events, and never touches simulation numeric state —
  it only *reads* the scheduler clock through the read-only
  :attr:`~repro.link.events.EventScheduler.now` accessor.  Differential
  tests (``tests/test_obs.py``) pin that telemetry-on and telemetry-off
  runs are byte-identical on delivery logs and persisted experiment stores.

Metric names follow a ``layer.metric`` scheme (``decoder.cache_hits``,
``phy.symbols_to_decode``, ``serve.queue_depth``); span names follow the
same scheme (``decoder.decode``, ``serve.flush``).  Exporters
(:mod:`repro.obs.exporters`) turn a snapshot into a JSONL event stream, a
Chrome ``trace_event`` timeline, and a Prometheus-style text page — all
deterministic given a fixed ``wall_clock`` source.
"""

from __future__ import annotations

import bisect
import json
import math
import time
from pathlib import Path
from typing import Callable, Iterator, Mapping, Sequence

__all__ = [
    "NullTelemetry",
    "Telemetry",
    "NULL_TELEMETRY",
    "current",
    "set_current",
    "default_buckets",
]

#: ``(name, sorted label items)`` — the registry key for every metric.
_Key = tuple[str, tuple[tuple[str, str], ...]]


def _key(name: str, labels: Mapping[str, object]) -> _Key:
    if not labels:
        return (name, ())
    return (name, tuple(sorted((k, str(v)) for k, v in labels.items())))


def default_buckets(name: str) -> tuple[float, ...]:
    """Fixed histogram bounds chosen from the metric name's unit suffix.

    Bounds are upper edges (Prometheus ``le`` semantics) and always end in
    ``+inf``.  ``*_s`` metrics are wall-clock seconds (geometric from 1 µs),
    ``*_db`` metrics are decibel samples (linear 5 dB steps), everything
    else is a non-negative count (powers of two) — which covers symbol
    counts, batch widths, and queue depths without per-site configuration.
    """
    if name.endswith("_s"):
        return tuple(1e-6 * 4**i for i in range(12)) + (math.inf,)
    if name.endswith("_db"):
        return tuple(float(b) for b in range(-30, 50, 5)) + (math.inf,)
    return tuple(float(2**i) for i in range(17)) + (math.inf,)


class _Histogram:
    """Fixed-bucket histogram with count/sum/min/max sidecars."""

    __slots__ = ("bounds", "counts", "count", "sum", "min", "max")

    def __init__(self, bounds: Sequence[float]) -> None:
        self.bounds = tuple(bounds)
        self.counts = [0] * len(self.bounds)
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value


class _Span:
    """One timed section: wall-clock duration plus symbol-time endpoints.

    Used as a context manager; the record is appended to the owning
    :class:`Telemetry` on exit.  ``__slots__`` keeps per-span allocation to
    one small object — spans wrap per-flush / per-decode work, never
    per-symbol work.
    """

    __slots__ = ("_tel", "name", "labels", "_t0", "_sym0")

    def __init__(self, tel: "Telemetry", name: str, labels: Mapping[str, object]) -> None:
        self._tel = tel
        self.name = name
        self.labels = labels

    def __enter__(self) -> "_Span":
        self._t0 = self._tel._wall()
        self._sym0 = self._tel.symbol_time()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        tel = self._tel
        t1 = tel._wall()
        tel._record_span(
            {
                "name": self.name,
                "labels": {k: str(v) for k, v in sorted(self.labels.items())},
                "ts_us": (self._t0 - tel._t0) * 1e6,
                "dur_us": (t1 - self._t0) * 1e6,
                "t_sym": self._sym0,
                "t_sym_end": tel.symbol_time(),
            }
        )
        return False


class _NullSpan:
    """Reusable no-op span: entering and exiting allocates nothing."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTelemetry:
    """The disabled sink: every method is a no-op, ``enabled`` is ``False``.

    Hot paths gate on :attr:`enabled` (one attribute read); colder seams may
    simply call the methods, which discard their arguments without touching
    any state.  The singleton is shared process-wide, so disabled runs are
    observationally identical to runs with no instrumentation at all.
    """

    __slots__ = ()
    enabled = False

    def counter(self, name: str, value: float = 1, **labels: object) -> None:
        pass

    def gauge(self, name: str, value: float, **labels: object) -> None:
        pass

    def observe(self, name: str, value: float, **labels: object) -> None:
        pass

    def span(self, name: str, **labels: object) -> _NullSpan:
        return _NULL_SPAN

    def bind_clock(self, clock: object) -> None:
        pass

    def symbol_time(self) -> int:
        return -1

    def now_s(self) -> float:
        """Wall-clock reading for duration math (0.0 when disabled)."""
        return 0.0

    def close(self) -> None:
        pass


NULL_TELEMETRY = NullTelemetry()


class Telemetry(NullTelemetry):
    """The enabled sink: a registry of metrics keyed by ``(name, labels)``.

    ``wall_clock`` is injectable so the exporter outputs can be made fully
    deterministic in tests (the default is :func:`time.perf_counter`).
    Symbol time is read from whatever scheduler was last handed to
    :meth:`bind_clock`; before any clock is bound (or after a simulation
    without one) spans and events stamp ``t_sym = -1``.

    ``span_spill`` switches the registry into **streaming** mode: instead of
    buffering span records in memory, each finished span is written (and
    flushed) to the given file as its final JSONL line the moment it closes.
    Counters/gauges/histograms are aggregates and stay in memory either way.
    The spill file is a valid suffix of the eventual ``telemetry.jsonl`` —
    :func:`~repro.obs.exporters.export_jsonl` concatenates it verbatim, so
    the final export is byte-identical to a buffered run, and a crashed run
    leaves every completed span on disk.
    """

    __slots__ = (
        "counters", "gauges", "histograms", "spans",
        "_wall", "_t0", "_clock", "_buckets",
        "_spill_path", "_spill_file", "_span_line",
    )
    enabled = True

    def __init__(
        self,
        wall_clock: Callable[[], float] = time.perf_counter,
        span_spill: str | Path | None = None,
    ) -> None:
        self.counters: dict[_Key, float] = {}
        self.gauges: dict[_Key, float] = {}
        self.histograms: dict[_Key, _Histogram] = {}
        self.spans: list[dict] = []
        self._wall = wall_clock
        self._t0 = wall_clock()
        self._clock = None
        self._buckets: dict[str, tuple[float, ...]] = {}
        self._spill_path: Path | None = None
        self._spill_file = None
        self._span_line = None
        if span_spill is not None:
            # Lazy import keeps the dependency one-directional at module
            # load time (exporters is stdlib-only and never imports us).
            from repro.obs.exporters import span_line

            self._span_line = span_line
            self._spill_path = Path(span_spill)
            self._spill_path.parent.mkdir(parents=True, exist_ok=True)
            self._spill_file = open(self._spill_path, "w")

    # -- clock ---------------------------------------------------------------
    def bind_clock(self, clock: object) -> None:
        """Stamp subsequent spans/events with ``clock.now`` symbol time.

        ``clock`` is read through its public read-only ``now`` accessor and
        never mutated; binding a new scheduler (each engine run builds its
        own) simply re-points the stamp source.
        """
        self._clock = clock

    def symbol_time(self) -> int:
        clock = self._clock
        return int(clock.now) if clock is not None else -1

    def now_s(self) -> float:
        """The registry's wall clock (injectable; relative to construction)."""
        return self._wall() - self._t0

    # -- metrics -------------------------------------------------------------
    def counter(self, name: str, value: float = 1, **labels: object) -> None:
        key = _key(name, labels)
        self.counters[key] = self.counters.get(key, 0) + value

    def gauge(self, name: str, value: float, **labels: object) -> None:
        self.gauges[_key(name, labels)] = value

    def set_buckets(self, name: str, bounds: Sequence[float]) -> None:
        """Override histogram bounds for ``name`` (before first observation).

        Bounds must be strictly increasing; a ``+inf`` top edge is appended
        when missing so no observation is ever dropped.
        """
        bounds = tuple(float(b) for b in bounds)
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(f"histogram bounds must be increasing: {bounds}")
        if not bounds or bounds[-1] != math.inf:
            bounds = bounds + (math.inf,)
        self._buckets[name] = bounds

    def observe(self, name: str, value: float, **labels: object) -> None:
        key = _key(name, labels)
        hist = self.histograms.get(key)
        if hist is None:
            bounds = self._buckets.get(name)
            if bounds is None:
                bounds = default_buckets(name)
            hist = self.histograms[key] = _Histogram(bounds)
        hist.observe(float(value))

    def span(self, name: str, **labels: object) -> _Span:
        return _Span(self, name, labels)

    # -- span storage (memory or streaming spill) ----------------------------
    @property
    def span_spill_path(self) -> Path | None:
        """Where spans stream to, or ``None`` in (default) buffered mode."""
        return self._spill_path

    def _record_span(self, record: dict) -> None:
        if self._spill_file is not None:
            self._spill_file.write(self._span_line(record) + "\n")
            self._spill_file.flush()
        else:
            self.spans.append(record)

    def flush_spans(self) -> None:
        """Push any buffered spill bytes to disk (no-op in buffered mode)."""
        if self._spill_file is not None and not self._spill_file.closed:
            self._spill_file.flush()

    def iter_spans(self) -> Iterator[dict]:
        """Span records in record order, wherever they live.

        In buffered mode this iterates the in-memory list; in streaming mode
        it re-reads the spill file one line at a time (floats round-trip
        exactly through JSON, so re-exported records are byte-identical).
        """
        if self._spill_path is None:
            yield from self.spans
            return
        self.flush_spans()
        with open(self._spill_path) as handle:
            for line in handle:
                record = json.loads(line)
                record.pop("kind", None)
                yield record

    def close(self) -> None:
        """Close the spill file (idempotent; no-op in buffered mode)."""
        if self._spill_file is not None and not self._spill_file.closed:
            self._spill_file.close()

    # -- snapshot ------------------------------------------------------------
    def histogram_counts(self, name: str, **labels: object) -> dict[float, int]:
        """``{upper bound: count}`` for one histogram (empty if unobserved)."""
        hist = self.histograms.get(_key(name, labels))
        if hist is None:
            return {}
        return dict(zip(hist.bounds, hist.counts))

    def counter_value(self, name: str, **labels: object) -> float:
        return self.counters.get(_key(name, labels), 0)

    def snapshot(self) -> dict:
        """Deterministically ordered export of every metric and span.

        Metric entries are sorted by ``(name, labels)``; spans stay in
        record order (they are already ordered by wall-clock start).  This
        is the single structure all three exporters consume.
        """
        return {**self.aggregates(), "spans": list(self.iter_spans())}

    def aggregates(self) -> dict:
        """The snapshot's counter/gauge/histogram part (no spans).

        Split out so the streaming JSONL exporter can emit aggregates from
        memory and append the span spill verbatim without materialising it.
        """
        return {
            "counters": [
                {"name": name, "labels": dict(labels), "value": value}
                for (name, labels), value in sorted(self.counters.items())
            ],
            "gauges": [
                {"name": name, "labels": dict(labels), "value": value}
                for (name, labels), value in sorted(self.gauges.items())
            ],
            "histograms": [
                {
                    "name": name,
                    "labels": dict(labels),
                    "buckets": [
                        {"le": bound, "count": count}
                        for bound, count in zip(hist.bounds, hist.counts)
                    ],
                    "count": hist.count,
                    "sum": hist.sum,
                    "min": hist.min if hist.count else None,
                    "max": hist.max if hist.count else None,
                }
                for (name, labels), hist in sorted(self.histograms.items())
            ],
        }


#: The process-global sink every instrumented constructor captures.
_CURRENT: NullTelemetry = NULL_TELEMETRY


def current() -> NullTelemetry:
    """The active telemetry sink (the no-op singleton unless one was set)."""
    return _CURRENT


def set_current(telemetry: NullTelemetry | None) -> NullTelemetry:
    """Install ``telemetry`` as the process-global sink; return the previous.

    Pass ``None`` to restore the disabled singleton.  Install *before*
    constructing engines/networks/sessions — instrumented classes capture
    :func:`current` once at construction time, which is what keeps the
    disabled path down to a single cached-attribute check.
    """
    global _CURRENT
    previous = _CURRENT
    _CURRENT = telemetry if telemetry is not None else NULL_TELEMETRY
    return previous
