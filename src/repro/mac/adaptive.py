"""The network-level status quo: threshold rate adaptation per cell user.

Section 1 of the paper describes today's wireless stacks as a menu of fixed
PHY rates plus a reactive policy choosing among them from observed channel
quality.  :mod:`repro.baselines.rate_adaptation` prices that policy on a
single link; this module lifts it into the multi-user cell so the paper's
"rateless removes the rate-adaptation loop" claim can be tested where it is
actually made — at the *network* level, against aggregate goodput and
fairness.

Each adaptive user transmits its head-of-line packet as a **fixed-rate
spinal frame** (:class:`~repro.baselines.fixed_rate_spinal.FixedRateSpinalSystem`
operation): the policy observes the user's CSI, selects a pass count from a
calibrated menu, and the sender transmits exactly that many passes.  The
receiver decodes once, after the final pass.  A failed frame is simply
retransmitted (fresh noise, possibly a re-selected rate) until the packet's
symbol budget cannot fit another attempt, at which point the packet is
aborted — mirroring the abort semantics of the rateless sessions so the two
modes are compared on equal terms.

The menu itself is spinal (``k / n_passes`` bits per symbol), not LDPC, so
the comparison isolates *ratelessness*: both modes run the same code family
over the same channels with the same budgets; only the stopping rule —
per-symbol feedback versus a pre-committed rate decision — differs.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.baselines.fixed_rate_spinal import FixedRateSpinalSystem
from repro.baselines.rate_adaptation import RateAdaptationPolicy, RateOption
from repro.channels.base import Channel
from repro.core.decoder_bubble import BubbleDecoder
from repro.core.decoder_vectorized import make_decoder_factory
from repro.core.encoder import ReceivedObservations, SpinalEncoder
from repro.core.params import SpinalParams
from repro.phy.fixed_rate import FixedRateSpinalCode
from repro.phy.protocol import RatelessCode

__all__ = [
    "SpinalRateOption",
    "CodecRateOption",
    "spinal_rate_options",
    "calibrate_spinal_rate_policy",
    "AdaptiveFrameTransmission",
    "AdaptiveCodecTransmission",
    "AdaptiveCodecLink",
    "AdaptiveSpinalLink",
]


@dataclass(frozen=True)
class SpinalRateOption:
    """One fixed-rate spinal menu entry: always transmit ``n_passes`` passes."""

    n_passes: int
    nominal_rate: float

    def __post_init__(self) -> None:
        if self.n_passes < 1:
            raise ValueError(f"n_passes must be at least 1, got {self.n_passes}")


def spinal_rate_options(k: int, pass_choices: Sequence[int]) -> tuple[SpinalRateOption, ...]:
    """The ``k / n_passes`` bits-per-symbol menu for the given pass counts."""
    if not pass_choices:
        raise ValueError("pass_choices must not be empty")
    return tuple(
        SpinalRateOption(n_passes=int(p), nominal_rate=k / int(p))
        for p in sorted(set(int(p) for p in pass_choices))
    )


def calibrate_spinal_rate_policy(
    payload_bits: int,
    params: SpinalParams,
    beam_width: int,
    adc_bits: int | None,
    pass_choices: Sequence[int],
    snr_grid_db: Sequence[float],
    n_frames: int,
    target_frame_error_rate: float,
    rng: np.random.Generator,
) -> RateAdaptationPolicy:
    """Measure per-option SNR thresholds, exactly as the LDPC adapter does.

    The threshold of an option is the lowest grid SNR at which its measured
    frame error rate is at or below the target; options that never reach
    the target get an infinite threshold (selected only as the robust
    fallback).  The calibration is the operator's offline planning step, so
    it draws from its own ``rng`` — separate from the cell's traffic.
    """
    if not 0.0 < target_frame_error_rate < 1.0:
        raise ValueError(
            f"target FER must be in (0, 1), got {target_frame_error_rate}"
        )
    grid = sorted(float(s) for s in snr_grid_db)
    if not grid:
        raise ValueError("snr_grid_db must not be empty")
    options = spinal_rate_options(params.k, pass_choices)
    thresholds: dict[SpinalRateOption, float] = {}
    for option in options:
        system = FixedRateSpinalSystem(
            message_bits=payload_bits,
            n_passes=option.n_passes,
            params=params,
            beam_width=beam_width,
            adc_bits=adc_bits,
        )
        threshold = float("inf")
        for snr_db in grid:
            result = system.measure(snr_db, n_frames, rng)
            if result.frame_error_rate <= target_frame_error_rate:
                threshold = snr_db
                break
        thresholds[option] = threshold
    return RateAdaptationPolicy(configs=options, thresholds=thresholds)


@dataclass(frozen=True)
class _PassBlock:
    """One transmitted pass: the cell's scheduling quantum for adaptive users."""

    pass_index: int
    n_symbols: int


class AdaptiveFrameTransmission:
    """One packet's fixed-rate transmission under threshold adaptation.

    Implements the same pausable interface as
    :class:`~repro.core.rateless.PacketTransmission` (``send_next_block`` /
    ``deliver`` / ``decoded`` / ``exhausted``), so the cell simulator
    multiplexes adaptive and rateless users identically.  Each *attempt*
    re-observes the channel through ``observe`` (evaluated at selection
    time, so staleness is whatever the CSI callable encodes) and commits to
    a pass count before any symbol is sent — the pre-commitment the paper
    argues rateless codes remove.
    """

    def __init__(
        self,
        payload: np.ndarray,
        rng: np.random.Generator,
        channel: Channel,
        encoder: SpinalEncoder,
        decoder: BubbleDecoder,
        policy: RateAdaptationPolicy,
        observe: Callable[[], float],
        max_symbols: int,
    ) -> None:
        if max_symbols <= 0:
            raise ValueError(f"max_symbols must be positive, got {max_symbols}")
        self.payload = np.asarray(payload, dtype=np.uint8)
        self.rng = rng
        self.channel = channel
        self.encoder = encoder
        self.decoder = decoder
        self.policy = policy
        self.observe = observe
        self.max_symbols = int(max_symbols)
        self.n_segments = encoder.params.n_segments(self.payload.size)
        self.symbols_sent = 0
        self.symbols_delivered = 0
        self.decoded = False
        self.attempts = 0
        #: The menu entries selected, one per attempt (diagnostics).
        self.selected: list = []
        self._exhausted = False
        self._active = False
        self._begin_attempt()

    # ------------------------------------------------------------------
    def _frame_symbols(self, option) -> int:
        return option.n_passes * self.n_segments

    def _begin_attempt(self) -> None:
        """Select a rate from fresh CSI and set up the next frame, if it fits."""
        option = self.policy.select(float(self.observe()))
        if self.symbols_sent + self._frame_symbols(option) > self.max_symbols:
            self._exhausted = True
            return
        self.attempts += 1
        self.selected.append(option)
        self._option = option
        self._passes = self.encoder.encode_passes(self.payload, option.n_passes)
        self._observations = ReceivedObservations(self.n_segments)
        self._next_pass = 0
        self._active = True

    @property
    def exhausted(self) -> bool:
        """Whether the budget cannot fit another attempt (packet abort)."""
        return self._exhausted

    # ------------------------------------------------------------------
    def send_next_block(self) -> tuple[_PassBlock, np.ndarray]:
        """Transmit the frame's next pass through the user's channel."""
        if not self._active:
            raise RuntimeError("no active frame attempt to send from")
        pass_index = self._next_pass
        received = self.channel.transmit(self._passes[pass_index], self.rng)
        self._next_pass += 1
        self.symbols_sent += self.n_segments
        return _PassBlock(pass_index=pass_index, n_symbols=self.n_segments), received

    def deliver(self, block: _PassBlock, received_values: np.ndarray) -> bool:
        """Feed one received pass to the receiver; decode after the last."""
        if self.decoded:
            return True
        for position in range(self.n_segments):
            self._observations.add(position, block.pass_index, received_values[position])
        self.symbols_delivered += block.n_symbols
        if block.pass_index + 1 < self._option.n_passes:
            return False
        # Final pass of the attempt: the fixed-rate receiver decodes once.
        decoded_bits = self.decoder.decode(
            self.payload.size, self._observations
        ).message_bits
        self._active = False
        if bool(np.array_equal(decoded_bits, self.payload)):
            self.decoded = True
            self._decoded_payload = decoded_bits
            return True
        self._begin_attempt()  # retransmit (or mark exhausted)
        return False

    def decoded_payload(self) -> np.ndarray:
        if not self.decoded:
            raise ValueError("the packet has not decoded")
        return self._decoded_payload


@dataclass(frozen=True)
class CodecRateOption:
    """A rate-menu entry backed by a fixed-rate :class:`~repro.phy.protocol.RatelessCode`.

    The protocol-level generalisation of :class:`SpinalRateOption`: any code
    whose :class:`~repro.phy.protocol.CodeInfo` declares ``symbols_per_frame``
    (a fixed-rate code) can populate a
    :class:`~repro.baselines.rate_adaptation.RateAdaptationPolicy` menu and
    be driven by :class:`AdaptiveCodecTransmission` — the adaptation loop no
    longer knows what code family it is scheduling.
    """

    code: RatelessCode

    def __post_init__(self) -> None:
        info = self.code.info
        if info.symbols_per_frame is None or not info.rate_menu:
            raise ValueError(
                f"CodecRateOption needs a fixed-rate code; {info.family!r} declares "
                "no symbols_per_frame/rate_menu"
            )

    @property
    def nominal_rate(self) -> float:
        return self.code.info.rate_menu[0]


class AdaptiveCodecTransmission:
    """One packet's fixed-rate ARQ transmission, driven through the codec protocol.

    The code-agnostic successor of :class:`AdaptiveFrameTransmission`: each
    attempt re-observes the channel, asks the policy for a menu option, and
    streams that option's *code* (``new_encoder`` / ``new_decoder``) for
    exactly one frame — the decoder signals the frame boundary by returning
    an attempted :class:`~repro.phy.protocol.DecodeStatus`.  A failed frame
    triggers re-selection and retransmission; a frame that no longer fits
    the symbol budget aborts the packet.  For a spinal menu this is
    bit-identical to the legacy implementation (pinned in
    ``tests/test_api_migration.py``).
    """

    def __init__(
        self,
        payload: np.ndarray,
        rng: np.random.Generator,
        channel: Channel,
        policy: RateAdaptationPolicy,
        code_for_option: Callable[[RateOption], RatelessCode],
        observe: Callable[[], float],
        max_symbols: int,
    ) -> None:
        if max_symbols <= 0:
            raise ValueError(f"max_symbols must be positive, got {max_symbols}")
        self.payload = np.asarray(payload, dtype=np.uint8)
        self.rng = rng
        self.channel = channel
        self.policy = policy
        self.code_for_option = code_for_option
        self.observe = observe
        self.max_symbols = int(max_symbols)
        self.symbols_sent = 0
        self.symbols_delivered = 0
        self.decoded = False
        self.attempts = 0
        #: The menu entries selected, one per attempt (diagnostics).
        self.selected: list = []
        self._decoded_payload: np.ndarray | None = None
        self._exhausted = False
        self._active = False
        self._begin_attempt()

    # ------------------------------------------------------------------
    def _begin_attempt(self) -> None:
        """Select a rate from fresh CSI and set up the next frame, if it fits."""
        option = self.policy.select(float(self.observe()))
        code = self.code_for_option(option)
        if self.symbols_sent + code.info.symbols_per_frame > self.max_symbols:
            self._exhausted = True
            return
        self.attempts += 1
        self.selected.append(option)
        self._source = code.new_encoder(self.payload)
        self._decoder = code.new_decoder()
        self._active = True

    @property
    def exhausted(self) -> bool:
        """Whether the budget cannot fit another attempt (packet abort)."""
        return self._exhausted

    # ------------------------------------------------------------------
    def send_next_block(self):
        """Transmit the frame's next block through the user's channel."""
        if not self._active:
            raise RuntimeError("no active frame attempt to send from")
        block = self._source.next_block()
        received = self.channel.transmit(block.values, self.rng)
        self.symbols_sent += block.n_symbols
        return block, received

    def deliver(self, block, received_values: np.ndarray) -> bool:
        """Feed one received block to the receiver; decode at the frame boundary."""
        if self.decoded:
            return True
        status = self._decoder.absorb(block, received_values, attempt=True)
        self.symbols_delivered += block.n_symbols
        if not status.attempted:
            return False  # mid-frame: the fixed-rate receiver waits
        self._active = False
        if status.payload is not None and bool(
            np.array_equal(status.payload, self.payload)
        ):
            self.decoded = True
            self._decoded_payload = status.payload
            return True
        self._begin_attempt()  # retransmit (or mark exhausted)
        return False

    def decoded_payload(self) -> np.ndarray:
        if not self.decoded:
            raise ValueError("the packet has not decoded")
        return self._decoded_payload


class AdaptiveCodecLink:
    """Cell link running threshold adaptation over any fixed-rate code menu.

    The policy's options must be :class:`CodecRateOption` instances (or
    anything mapping to a fixed-rate code via ``option.code``); every packet
    opens one :class:`AdaptiveCodecTransmission`.
    """

    def __init__(
        self,
        policy: RateAdaptationPolicy,
        channel: Channel,
        max_symbols: int = 4096,
    ) -> None:
        self.policy = policy
        self.channel = channel
        self.max_symbols = int(max_symbols)
        payload_sizes = {o.code.info.payload_bits for o in policy.configs}
        if len(payload_sizes) != 1:
            raise ValueError(
                f"menu codes disagree on payload size: {sorted(payload_sizes)}"
            )
        self.payload_bits = payload_sizes.pop()

    def open(
        self,
        payload: np.ndarray,
        rng: np.random.Generator,
        observe: Callable[[], float],
    ) -> AdaptiveCodecTransmission:
        return AdaptiveCodecTransmission(
            payload=payload,
            rng=rng,
            channel=self.channel,
            policy=self.policy,
            code_for_option=lambda option: option.code,
            observe=observe,
            max_symbols=self.max_symbols,
        )


class AdaptiveSpinalLink:
    """Per-user factory for adaptive transmissions (the cell's link object).

    Mirrors the role :class:`~repro.mac.cell.RatelessLink` plays for
    rateless users: owns the user's channel, budget and PHY configuration,
    and opens one transmission per packet.  Since the ``repro.phy``
    redesign each menu entry is backed by a
    :class:`~repro.phy.fixed_rate.FixedRateSpinalCode` and packets run
    through the code-agnostic :class:`AdaptiveCodecTransmission` —
    bit-identically to the legacy :class:`AdaptiveFrameTransmission` path.
    """

    def __init__(
        self,
        policy: RateAdaptationPolicy,
        channel: Channel,
        payload_bits: int,
        params: SpinalParams | None = None,
        beam_width: int = 16,
        max_symbols: int = 4096,
    ) -> None:
        self.policy = policy
        self.channel = channel
        self.payload_bits = int(payload_bits)
        self.params = params if params is not None else SpinalParams(k=8, c=10)
        self.params.n_segments(self.payload_bits)  # validates divisibility
        self.beam_width = int(beam_width)
        self.max_symbols = int(max_symbols)
        #: Legacy compatibility attributes: transmissions now go through the
        #: per-option codes below, not this shared encoder/decoder pair.
        #: Built via the engine registry so the mac layer follows the same
        #: REPRO_SPINAL_DECODER selection as the phy code families.
        self.encoder = SpinalEncoder(self.params)
        engine = os.environ.get("REPRO_SPINAL_DECODER", "bubble")
        self.decoder = make_decoder_factory(engine, self.beam_width)(self.encoder)
        #: One fixed-rate code per menu entry (built lazily so policies may
        #: carry options the traffic never selects).
        self._codes: dict = {}

    def _code_for_option(self, option: SpinalRateOption) -> FixedRateSpinalCode:
        code = self._codes.get(option)
        if code is None:
            code = FixedRateSpinalCode(
                self.payload_bits,
                n_passes=option.n_passes,
                params=self.params,
                beam_width=self.beam_width,
            )
            self._codes[option] = code
        return code

    def open(
        self,
        payload: np.ndarray,
        rng: np.random.Generator,
        observe: Callable[[], float],
    ) -> AdaptiveCodecTransmission:
        return AdaptiveCodecTransmission(
            payload=payload,
            rng=rng,
            channel=self.channel,
            policy=self.policy,
            code_for_option=self._code_for_option,
            observe=observe,
            max_symbols=self.max_symbols,
        )
