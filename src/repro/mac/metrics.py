"""Network-level metrics of a multi-user cell run.

The paper's argument is won or lost on these numbers: *aggregate* goodput
(does removing the rate-adaptation loop cost cell capacity?), *per-user*
goodput and Jain's fairness index (does the win come at someone's expense?),
and packet latency (does rateless stopping keep delay bounded?).  All of
them are pure functions of the per-packet records a cell run produces, so a
persisted experiment cell can be re-analysed without re-simulating.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["PacketOutcome", "CellResult", "jain_fairness_index"]


def jain_fairness_index(values: Sequence[float]) -> float:
    """Jain's fairness index ``(sum x)^2 / (n * sum x^2)`` of ``values``.

    1.0 means perfectly equal shares; ``1/n`` means one user got
    everything.  An all-zero allocation is vacuously fair (1.0), so a cell
    in which nothing was delivered does not report maximal unfairness.
    """
    x = np.asarray(list(values), dtype=np.float64)
    if x.size == 0:
        raise ValueError("fairness of an empty allocation is undefined")
    if np.any(x < 0):
        raise ValueError("fairness expects non-negative allocations")
    square_sum = float(np.sum(x * x))
    if square_sum == 0.0:
        return 1.0
    return float(np.sum(x)) ** 2 / (x.size * square_sum)


@dataclass(frozen=True)
class PacketOutcome:
    """The fate of one uplink packet.

    ``symbols_sent`` counts every channel use the sender spent on the
    packet (including failed fixed-rate attempts and aborted budgets);
    ``symbols_needed`` the uses the receiver had consumed when it decoded
    (0 for undelivered packets).  ``completed`` is the cell time of
    delivery or abort (-1 if the cell ended with the packet still queued,
    which only happens when stepping a cell with ``run_until``).
    """

    user: int
    index: int
    arrival: int
    completed: int
    delivered: bool
    symbols_sent: int
    symbols_needed: int
    payload_bits: int

    @property
    def latency(self) -> int:
        """Arrival-to-delivery time in symbol-times (delivered packets only)."""
        if not self.delivered:
            raise ValueError("latency is undefined for an undelivered packet")
        return self.completed - self.arrival


@dataclass(frozen=True)
class CellResult:
    """Everything one cell simulation measured."""

    scheduler: str
    n_users: int
    packets: tuple[PacketOutcome, ...]
    makespan: int

    # -- totals --------------------------------------------------------------
    @property
    def n_packets(self) -> int:
        return len(self.packets)

    @property
    def n_delivered(self) -> int:
        return sum(1 for p in self.packets if p.delivered)

    @property
    def delivered_fraction(self) -> float:
        if not self.packets:
            return 1.0
        return self.n_delivered / self.n_packets

    @property
    def delivered_bits(self) -> int:
        return sum(p.payload_bits for p in self.packets if p.delivered)

    @property
    def total_symbols_sent(self) -> int:
        return sum(p.symbols_sent for p in self.packets)

    @property
    def aggregate_goodput(self) -> float:
        """Delivered payload bits per symbol-time of cell wall-clock."""
        if self.makespan == 0:
            return 0.0
        return self.delivered_bits / self.makespan

    # -- per-user ------------------------------------------------------------
    def per_user_delivered_bits(self) -> np.ndarray:
        bits = np.zeros(self.n_users, dtype=np.int64)
        for packet in self.packets:
            if packet.delivered:
                bits[packet.user] += packet.payload_bits
        return bits

    def per_user_goodput(self) -> np.ndarray:
        """Each user's delivered bits per symbol-time of *shared* wall-clock."""
        if self.makespan == 0:
            return np.zeros(self.n_users, dtype=np.float64)
        return self.per_user_delivered_bits() / float(self.makespan)

    def per_user_symbols(self) -> np.ndarray:
        symbols = np.zeros(self.n_users, dtype=np.int64)
        for packet in self.packets:
            symbols[packet.user] += packet.symbols_sent
        return symbols

    @property
    def jain_fairness(self) -> float:
        """Jain index of the per-user goodput allocation."""
        return jain_fairness_index(self.per_user_goodput())

    # -- latency -------------------------------------------------------------
    def latencies(self) -> np.ndarray:
        """Arrival-to-delivery times of the delivered packets, in order."""
        return np.array(
            [p.latency for p in self.packets if p.delivered], dtype=np.int64
        )

    @property
    def mean_latency(self) -> float:
        """Mean delivered-packet latency in symbol-times.

        Documented sentinel: **0.0 when no packet was delivered** (an empty
        cell, or a run whose every packet missed its deadline).  The empty
        case is guarded explicitly so no ``numpy`` mean-of-empty warning can
        fire — the tier-1 suite runs with warnings as errors.
        """
        latencies = self.latencies()
        if latencies.size == 0:
            return 0.0
        return float(latencies.mean())

    def latency_percentile(self, q: float) -> float:
        """The ``q``-th percentile of delivered-packet latency.

        Documented sentinel: **0.0 when no packet was delivered**, guarded
        before the ``np.percentile`` call (which would raise on an empty
        array) — same convention as :attr:`mean_latency`.
        """
        latencies = self.latencies()
        if latencies.size == 0:
            return 0.0
        return float(np.percentile(latencies, q))
