"""MAC schedulers: who transmits on the shared medium next.

The cell simulator (:mod:`repro.mac.cell`) calls :meth:`Scheduler.pick`
every time the medium frees up, passing one :class:`UserView` per user that
currently has traffic to send.  Three classic disciplines are provided:

* :class:`RoundRobinScheduler` — TDMA: users take turns block by block,
  blind to channel state.  The fairness reference point.
* :class:`MaxSnrScheduler` — pure opportunism: always grant the user whose
  *observed* SNR is highest right now.  Maximises aggregate goodput on
  time-varying channels (ride the crests) at the cost of starving users in
  fades.
* :class:`ProportionalFairScheduler` — the standard compromise: grant the
  user maximising ``instantaneous rate / average throughput``, where the
  average is an exponentially-decayed estimate of the bits the user has
  been delivered.  Users in a relative peak of their own channel win even
  when an absolutely-better user exists.

Schedulers are deliberately deterministic — ties break towards the lowest
user index, and all state updates are driven by the cell's event clock —
so cell results are reproducible and worker-count invariant like every
other measurement in the library.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

__all__ = [
    "UserView",
    "Scheduler",
    "RoundRobinScheduler",
    "MaxSnrScheduler",
    "ProportionalFairScheduler",
    "make_scheduler",
    "SCHEDULER_NAMES",
]


@dataclass(frozen=True)
class UserView:
    """What a scheduler may know about one backlogged user at a grant instant.

    ``csi_db`` is the *observed* channel quality (the user's CSI report),
    which may lag or summarise the true channel; the cell never leaks the
    actual noise realisations to the scheduler.
    """

    user: int
    csi_db: float
    backlog: int
    symbols_granted: int
    bits_delivered: int


class Scheduler:
    """Interface a MAC scheduling discipline implements.

    Only :meth:`pick` is mandatory; the ``on_*`` hooks let stateful
    disciplines (e.g. proportional-fair) observe grants and deliveries
    without the cell knowing their internals.
    """

    #: Registry/report name of the discipline.
    name: str = "scheduler"

    #: Whether :meth:`pick` reads ``csi_db``.  CSI-blind disciplines set
    #: this ``False`` and the cell skips the per-user CSI observation at
    #: every grant — at city scale that scan is the dominant cost of a
    #: grant, and CSI reads are pure so skipping them is behavior-neutral.
    observes_csi: bool = True

    def pick(self, now: int, views: Sequence[UserView]) -> int:
        """Return the ``user`` index of one of ``views`` to grant the medium.

        ``views`` is non-empty and ordered by user index.
        """
        raise NotImplementedError

    def on_grant(self, user: int, n_symbols: int, now: int) -> None:
        """Called when ``user`` is granted ``n_symbols`` starting at ``now``."""

    def on_delivered(self, user: int, bits: int, now: int) -> None:
        """Called when a packet of ``bits`` payload bits completes at ``now``."""


class RoundRobinScheduler(Scheduler):
    """TDMA: cycle through backlogged users, one block each, channel-blind."""

    name = "round-robin"
    observes_csi = False  # turn order never consults the channel

    def __init__(self) -> None:
        self._cursor = -1

    def pick(self, now: int, views: Sequence[UserView]) -> int:
        for view in views:
            if view.user > self._cursor:
                self._cursor = view.user
                return view.user
        self._cursor = views[0].user
        return self._cursor


class MaxSnrScheduler(Scheduler):
    """Pure opportunism: grant the highest observed SNR, ties to lowest index."""

    name = "max-snr"

    def pick(self, now: int, views: Sequence[UserView]) -> int:
        best = views[0]
        for view in views[1:]:
            if view.csi_db > best.csi_db:
                best = view
        return best.user


class ProportionalFairScheduler(Scheduler):
    """Grant ``argmax instantaneous_rate / average_throughput``.

    The average throughput of user ``i`` is tracked as an exponentially
    decayed estimate with half-life ``half_life`` symbol-times: every
    delivered packet adds an impulse of ``bits / half_life``, and the
    estimate halves each ``half_life`` ticks of cell time.  A short
    half-life approaches round-robin (everyone's average forgets fast); a
    long one approaches max-SNR (past service barely discounts a good
    channel).  The instantaneous rate is the Shannon rate at the observed
    SNR — the scheduler's estimate of what a grant is worth, not a promise
    the codec must honour.
    """

    name = "proportional-fair"

    def __init__(self, half_life: int = 2048, floor: float = 1e-9) -> None:
        if half_life < 1:
            raise ValueError(f"half_life must be at least 1, got {half_life}")
        # The floor is what keeps the PF metric finite at a user's *first*
        # grant, when their decayed average is exactly zero: the metric
        # becomes ``instantaneous / floor`` (unserved users get near-absolute
        # priority), not a division by zero.  A zero or negative floor would
        # reintroduce the ZeroDivisionError, so reject it up front.
        if not floor > 0.0:
            raise ValueError(f"floor must be strictly positive, got {floor}")
        self.half_life = int(half_life)
        self.floor = float(floor)
        self._average: dict[int, float] = {}
        self._updated: dict[int, int] = {}

    def _decayed_average(self, user: int, now: int) -> float:
        average = self._average.get(user, 0.0)
        if average == 0.0:
            return 0.0
        elapsed = now - self._updated[user]
        return average * 0.5 ** (elapsed / self.half_life)

    def pick(self, now: int, views: Sequence[UserView]) -> int:
        best = None
        best_metric = float("-inf")
        for view in views:
            snr_linear = 10.0 ** (view.csi_db / 10.0)
            instantaneous = math.log2(1.0 + snr_linear)
            metric = instantaneous / max(self._decayed_average(view.user, now), self.floor)
            # A NaN CSI report (a tracing gap, a corrupt trace sample) makes
            # the metric NaN, and NaN compares false against everything — a
            # pick over all-NaN views would return no user at all.  Treat
            # NaN as "worst possible" so such a user is never *preferred*,
            # while the ``best is None`` arm still guarantees a valid grant
            # (the lowest-index user, matching the library's tie-break rule).
            if math.isnan(metric):
                metric = float("-inf")
            if best is None or metric > best_metric:
                best, best_metric = view, metric
        return best.user

    def on_delivered(self, user: int, bits: int, now: int) -> None:
        self._average[user] = (
            self._decayed_average(user, now) + bits / self.half_life
        )
        self._updated[user] = now


#: The disciplines :func:`make_scheduler` (and the cell experiments) accept.
SCHEDULER_NAMES = ("round-robin", "max-snr", "proportional-fair")


def make_scheduler(name: str, **kwargs) -> Scheduler:
    """Build a fresh scheduler instance from its experiment-config name."""
    factories = {
        "round-robin": RoundRobinScheduler,
        "max-snr": MaxSnrScheduler,
        "proportional-fair": ProportionalFairScheduler,
    }
    try:
        factory = factories[name]
    except KeyError:
        raise ValueError(
            f"unknown scheduler {name!r}; expected one of {sorted(factories)}"
        ) from None
    return factory(**kwargs)
