"""Event-driven multi-user cell: N uplink sessions sharing one medium.

The cell generalises the single-link transport of :mod:`repro.link.transport`
one layer up: instead of one sender owning the channel, N users — each with
a private channel realisation, packet queue and per-packet random streams —
contend for a single shared medium, and a MAC scheduler
(:mod:`repro.mac.schedulers`) decides, every time the medium frees up, whose
next subpass block is transmitted.  Time is the same integer symbol-time
clock the link transport uses (:mod:`repro.link.events`), so cell goodput
divides directly into the bits/symbol numbers of the rest of the library.

Model
-----
* The scheduling quantum is one *block*: a rateless user's next subpass
  (:class:`~repro.core.rateless.PacketTransmission`) or an adaptive user's
  next fixed-rate pass (:class:`~repro.mac.adaptive.AdaptiveFrameTransmission`).
  The medium carries one block at a time; the base station's decode attempt
  and the grant decision both happen at the block boundary (decode before
  grant, via the event priorities).
* Feedback within the cell is the paper's methodology: the base station
  knows immediately when a user's packet decodes (the same "receiver
  informs the sender as soon as it is able to decode" assumption Figure 2
  uses), so the measured differences between schedulers and between
  rateless/adaptive modes are MAC and PHY effects, not ARQ artifacts —
  those are priced separately by :mod:`repro.link.transport`.
* Each user's per-packet noise streams reuse the transport's per-hop
  convention with *hop ≡ user* (:func:`cell_packet_rng`), which is what
  makes a single-user round-robin cell bit-identical to the single-hop
  transport — the PR-2 equivalence discipline extended one layer up, pinned
  by the test suite.
* Channels whose state evolves with *wall-clock* time (a
  :class:`~repro.channels.awgn.TimeVaryingAWGNChannel` pinned to the cell
  clock via ``set_time``) make scheduling genuinely matter: an opportunistic
  scheduler rides each user's crests.  Static channels make per-packet
  symbol counts schedule-invariant, so every work-conserving discipline
  yields the same aggregate goodput — a useful null result the tests also
  pin.
* Optional per-user latency ``deadline``: a packet not delivered within the
  deadline of its arrival is dropped, mid-flight if necessary.  Deadline
  timers are armed at arrival and disarmed on delivery — the cancellable
  event handles of :class:`~repro.link.events.EventScheduler` exist for
  exactly this.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Protocol, Sequence

import numpy as np

from repro.core.rateless import PacketTransmission, RatelessSession
from repro.phy.session import CodecSession
from repro.link.events import (
    PRIORITY_BLOCK,
    PRIORITY_SEND,
    EventHandle,
    EventScheduler,
)
from repro.link.transport import packet_rng
from repro.mac.metrics import CellResult, PacketOutcome
from repro.obs.telemetry import current as current_telemetry
from repro.mac.schedulers import Scheduler, UserView, make_scheduler

__all__ = [
    "CellUser",
    "Link",
    "MacCell",
    "RatelessLink",
    "cell_packet_rng",
    "default_csi",
    "simulate_cell",
    "spread_snrs",
]


def cell_packet_rng(seed: int, user: int, index: int) -> np.random.Generator:
    """Per-(user, packet) generator for a user's forward-channel noise.

    Deliberately the transport's :func:`~repro.link.transport.packet_rng`
    with *hop ≡ user*: a one-user cell then derives exactly the streams of
    the one-hop transport, so the two simulators are comparable symbol for
    symbol (the equivalence test relies on this).
    """
    return packet_rng(seed, user, index)


def spread_snrs(center_db: float, spread_db: float, n_users: int) -> list[float]:
    """Evenly spaced per-user SNRs spanning ``spread_db`` around the center.

    User 0 gets the worst channel.  ``spread_db = 0`` (or one user) gives
    everyone the center SNR.
    """
    if n_users < 1:
        raise ValueError(f"n_users must be at least 1, got {n_users}")
    if spread_db < 0:
        raise ValueError(f"spread_db must be non-negative, got {spread_db}")
    if n_users == 1:
        return [float(center_db)]
    low = center_db - spread_db / 2.0
    step = spread_db / (n_users - 1)
    return [float(low + u * step) for u in range(n_users)]


def default_csi(channel) -> Callable[[int], float]:
    """Channel-state information the scheduler observes, derived per channel.

    * a per-symbol SNR trace (``snr_trace_db``) is read at the *cell* time,
      so opportunistic schedulers can ride it;
    * a static SNR (``snr_db``) or a fading channel's mean
      (``average_snr_db``) reports as a constant — private fading
      realisations are not leaked to the scheduler.
    """
    trace = getattr(channel, "snr_trace_db", None)
    if trace is not None:
        trace = np.asarray(trace, dtype=np.float64)

        def from_trace(now: int, trace=trace) -> float:
            return float(trace[now % trace.size])

        return from_trace
    for attribute in ("snr_db", "average_snr_db"):
        value = getattr(channel, attribute, None)
        if value is not None:
            constant = float(value)
            return lambda now, constant=constant: constant
    raise ValueError(
        f"cannot derive CSI from channel {channel!r}; pass an explicit csi callable"
    )


class Link(Protocol):
    """What the cell needs from a user's PHY: a channel, a budget, a factory."""

    channel: object
    payload_bits: int
    max_symbols: int

    def open(
        self,
        payload: np.ndarray,
        rng: np.random.Generator,
        observe: Callable[[], float],
    ):  # pragma: no cover - protocol stub
        ...


@dataclass(frozen=True)
class RatelessLink:
    """A user running a rateless session (no rate selection).

    Since the ``repro.phy`` redesign the session may be the historical
    spinal :class:`~repro.core.rateless.RatelessSession` *or* a
    :class:`~repro.phy.session.CodecSession` over any registered code
    family — the cell only drives the pausable-transmission interface.
    """

    session: "RatelessSession | CodecSession"

    @property
    def channel(self):
        return self.session.channel

    @property
    def payload_bits(self) -> int:
        return self.session.payload_bits

    @property
    def max_symbols(self) -> int:
        return self.session.max_symbols

    def open(
        self,
        payload: np.ndarray,
        rng: np.random.Generator,
        observe: Callable[[], float],
    ) -> PacketTransmission:
        # A rateless sender needs no CSI: ``observe`` is part of the link
        # interface only because the adaptive baseline must pre-commit.
        return self.session.open_transmission(payload, rng)


@dataclass(frozen=True)
class CellUser:
    """One uplink user: a link, its traffic, and what the scheduler may see.

    ``arrivals`` optionally gives each packet's arrival time (symbol-times;
    default: all backlogged at 0).  ``deadline`` optionally drops packets
    not delivered within that many symbol-times of arrival.  ``uid``
    optionally assigns the user a stable identity distinct from its position
    in the cell's user list — the multi-cell network layer uses this so a
    user keeps its scheduler-visible index and per-packet RNG streams across
    handoffs; standalone cells leave it ``None`` (identity = position).
    """

    link: Link
    payloads: Sequence[np.ndarray]
    csi: Callable[[int], float] | None = None
    arrivals: Sequence[int] | None = None
    deadline: int | None = None
    uid: int | None = None

    def __post_init__(self) -> None:
        if self.arrivals is not None and len(self.arrivals) != len(self.payloads):
            raise ValueError(
                f"{len(self.arrivals)} arrival times for {len(self.payloads)} payloads"
            )
        if self.deadline is not None and self.deadline < 1:
            raise ValueError(f"deadline must be at least 1, got {self.deadline}")


class _CellPacket:
    """Mutable bookkeeping for one packet inside the simulation."""

    __slots__ = (
        "user",
        "index",
        "arrival",
        "payload",
        "payload_bits",
        "tx",
        "finished",
        "delivered",
        "completed",
        "deadline_handle",
    )

    def __init__(
        self, user: int, index: int, arrival: int, payload: np.ndarray, payload_bits: int
    ) -> None:
        self.user = user
        self.index = index
        self.arrival = arrival
        self.payload = payload
        self.payload_bits = payload_bits
        self.tx = None
        self.finished = False
        self.delivered = False
        self.completed = -1
        self.deadline_handle: EventHandle | None = None


class _UserState:
    """Mutable per-user simulation state."""

    __slots__ = ("index", "config", "csi", "queue", "symbols_granted", "bits_delivered")

    def __init__(self, index: int, config: CellUser) -> None:
        self.index = index
        self.config = config
        self.csi = config.csi if config.csi is not None else default_csi(config.link.channel)
        self.queue: deque[_CellPacket] = deque()
        self.symbols_granted = 0
        self.bits_delivered = 0


class MacCell:
    """The cell simulation: users, scheduler, and the shared medium clock.

    Construct, then :meth:`run` to completion (every packet delivered,
    aborted, or expired) — or step with :meth:`run_until` and inspect
    :meth:`result` between epochs.  The scheduler instance is owned by the
    cell for the duration of the run (its internal state is mutated).
    """

    def __init__(
        self,
        users: Sequence[CellUser],
        scheduler: Scheduler | str,
        seed: int = 20111114,
        max_events: int | None = None,
        *,
        clock: EventScheduler | None = None,
        allow_empty: bool = False,
    ) -> None:
        if not users and not allow_empty:
            raise ValueError("a cell needs at least one user")
        self.scheduler = (
            make_scheduler(scheduler) if isinstance(scheduler, str) else scheduler
        )
        self.seed = int(seed)
        self.max_events = max_events
        # ``clock`` lets many cells share one symbol-time clock (the
        # multi-cell network); a standalone cell owns a private one.
        self.clock = clock if clock is not None else EventScheduler()
        self.busy_until = 0
        self.closed_at = 0
        self._grant_pending = False
        self._on_air: _CellPacket | None = None
        self._tel = current_telemetry()
        self.states = [
            _UserState(config.uid if config.uid is not None else index, config)
            for index, config in enumerate(users)
        ]
        # The grant path iterates ``states`` in order and promises the
        # scheduler views sorted by user index; dynamic attach keeps the
        # invariant, so require it of the initial list too.
        if any(
            a.index >= b.index for a, b in zip(self.states, self.states[1:])
        ):
            raise ValueError("user ids must be strictly increasing")
        self.packets: list[_CellPacket] = []
        for state in self.states:
            state.config.link.channel.reset()
            arrivals = state.config.arrivals
            for index, payload in enumerate(state.config.payloads):
                arrival = 0 if arrivals is None else int(arrivals[index])
                if arrival < 0:
                    raise ValueError(f"arrival times must be non-negative, got {arrival}")
                packet = _CellPacket(
                    state.index,
                    index,
                    arrival,
                    np.asarray(payload),
                    state.config.link.payload_bits,
                )
                self.packets.append(packet)
                if arrival == 0:
                    self._enqueue(state, packet)
                else:
                    self.clock.schedule(
                        arrival,
                        PRIORITY_BLOCK,
                        lambda state=state, packet=packet: self._enqueue(state, packet),
                    )

    # -- intake --------------------------------------------------------------
    def _enqueue(self, state: _UserState, packet: _CellPacket) -> None:
        state.queue.append(packet)
        deadline = state.config.deadline
        if deadline is not None:
            # PRIORITY_SEND so that a block delivering the packet at the
            # same tick wins (delivery disarms the timer), and the expiry
            # still precedes the grant decision it frees the queue for.
            packet.deadline_handle = self.clock.schedule(
                packet.arrival + deadline,
                PRIORITY_SEND,
                lambda: self._expire(state, packet),
            )
        self._kick(self.clock.now)

    def _expire(self, state: _UserState, packet: _CellPacket) -> None:
        if packet.finished:  # pragma: no cover - delivery cancels the timer
            return
        self._finish(state, packet, delivered=False)

    # -- the medium ----------------------------------------------------------
    def _kick(self, time: int) -> None:
        if self._grant_pending:
            return
        self._grant_pending = True
        self.clock.schedule(max(time, self.busy_until), PRIORITY_SEND, self._on_grant)

    def _resolve_head(self, state: _UserState) -> _CellPacket | None:
        """Open the head packet's transmission; abort unstartable packets.

        A packet whose transmission is exhausted the moment it opens (an
        adaptive user whose most robust frame does not fit the budget) is
        aborted here, at grant time — nothing of it ever reaches the air.
        A packet whose deadline has been reached is likewise expired here:
        a grant event scheduled *before* the packet arrived can fire ahead
        of the deadline timer at the same tick (FIFO among equal
        priorities), and the medium must not be handed to a doomed packet.
        """
        deadline = state.config.deadline
        while state.queue:
            packet = state.queue[0]
            if deadline is not None and self.clock.now >= packet.arrival + deadline:
                self._finish(state, packet, delivered=False)
                continue
            if packet.tx is None:
                packet.tx = state.config.link.open(
                    packet.payload,
                    cell_packet_rng(self.seed, state.index, packet.index),
                    lambda state=state: float(state.csi(self.clock.now)),
                )
            if packet.tx.exhausted and not packet.tx.decoded:
                self._finish(state, packet, delivered=False)
                continue
            return packet
        return None

    def _on_grant(self) -> None:
        self._grant_pending = False
        now = self.clock.now
        if now < self.busy_until:
            # Reachable: aborting/expiring a head packet *during* a grant
            # re-kicks at the same tick, and if that grant then put a block
            # on the air, the queued same-tick grant fires while the medium
            # is busy.  Defer it to the block boundary.
            self._kick(self.busy_until)
            return
        eligible: list[tuple[_UserState, _CellPacket]] = []
        for state in self.states:
            packet = self._resolve_head(state)
            if packet is not None:
                eligible.append((state, packet))
        if not eligible:
            return  # idle; a future arrival will kick the medium again
        # CSI-blind disciplines never read csi_db, so skip the observation
        # scan (pure reads, but O(users) of them per grant) and report NaN.
        observes_csi = getattr(self.scheduler, "observes_csi", True)
        views = [
            UserView(
                user=state.index,
                csi_db=float(state.csi(now)) if observes_csi else float("nan"),
                backlog=len(state.queue),
                symbols_granted=state.symbols_granted,
                bits_delivered=state.bits_delivered,
            )
            for state, _ in eligible
        ]
        choice = self.scheduler.pick(now, views)
        by_user = {state.index: (state, packet) for state, packet in eligible}
        if choice not in by_user:
            raise ValueError(
                f"scheduler {self.scheduler.name!r} picked user {choice}, "
                f"eligible: {sorted(by_user)}"
            )
        state, packet = by_user[choice]
        channel = state.config.link.channel
        set_time = getattr(channel, "set_time", None)
        if set_time is not None:
            set_time(now)  # pin wall-clock channels to the shared cell clock
        block, received = packet.tx.send_next_block()
        state.symbols_granted += block.n_symbols
        self.scheduler.on_grant(state.index, block.n_symbols, now)
        if self._tel.enabled:
            self._tel.counter("mac.grants", scheduler=self.scheduler.name)
            self._tel.observe("mac.grant_symbols", block.n_symbols)
            chosen = next(v for v in views if v.user == choice)
            if chosen.csi_db == chosen.csi_db:  # NaN when the scheduler is CSI-blind
                self._tel.observe("mac.granted_csi_db", chosen.csi_db)
        arrival = now + block.n_symbols
        self.busy_until = arrival
        self._on_air = packet
        self.clock.schedule(
            arrival,
            PRIORITY_BLOCK,
            lambda: self._on_block(state, packet, block, received),
        )
        self._kick(arrival)

    def _on_block(self, state: _UserState, packet: _CellPacket, block, received) -> None:
        if self._on_air is packet:
            self._on_air = None
        if packet.finished:
            return  # expired while the block was in flight
        if packet.tx.deliver(block, received):
            self._finish(state, packet, delivered=True)
        elif packet.tx.exhausted:
            self._finish(state, packet, delivered=False)

    def _finish(self, state: _UserState, packet: _CellPacket, delivered: bool) -> None:
        packet.finished = True
        packet.delivered = delivered
        packet.completed = self.clock.now
        if packet.deadline_handle is not None:
            packet.deadline_handle.cancel()
        if state.queue and state.queue[0] is packet:
            state.queue.popleft()
        else:
            state.queue.remove(packet)
        self.closed_at = max(self.closed_at, self.clock.now)
        if self._tel.enabled:
            self._tel.counter(
                "mac.packets", outcome="delivered" if delivered else "dropped"
            )
        if delivered:
            bits = state.config.link.payload_bits
            state.bits_delivered += bits
            self.scheduler.on_delivered(state.index, bits, self.clock.now)
        self._kick(self.clock.now)

    # -- handoff (multi-cell networks) ---------------------------------------
    @property
    def on_air_user(self) -> int | None:
        """The user whose block occupies the medium right now, if any.

        ``None`` whenever the medium is free at the current clock tick —
        including the instant a block lands (``busy_until == now``).  The
        network layer reads this both to compute uplink interference (a
        cell radiates from its transmitting user's position) and to defer
        handoffs that would tear a block off the air.
        """
        if self._on_air is not None and self.busy_until > self.clock.now:
            return self._on_air.user
        return None

    def detach_user(self, index: int) -> _UserState:
        """Remove a user (queue and in-flight transmission state intact).

        The returned state object is exactly what :meth:`attach_state`
        accepts: a handoff is ``detach_user`` on the old cell followed by
        ``attach_state`` on the new one, under one shared clock.  Packets
        already resolved in this cell stay in its history; a partially
        transmitted head packet migrates with its transmission (symbols
        sent so far are neither lost nor re-sent).  Detaching the user
        whose block is on the air is refused — land the block first.
        """
        for position, state in enumerate(self.states):
            if state.index == index:
                break
        else:
            raise ValueError(f"no user {index} in this cell")
        if self.on_air_user == index:
            raise RuntimeError(
                f"user {index} has a block on the air until t={self.busy_until}; "
                "defer the handoff to the block boundary"
            )
        return self.states.pop(position)

    def attach_state(self, state: _UserState) -> None:
        """Adopt a user migrated from another cell and contend it immediately."""
        if any(existing.index == state.index for existing in self.states):
            raise ValueError(f"user {state.index} already in this cell")
        position = 0
        while position < len(self.states) and self.states[position].index < state.index:
            position += 1
        self.states.insert(position, state)
        if state.queue:
            self._kick(self.clock.now)

    # -- driving -------------------------------------------------------------
    def _event_budget(self) -> int:
        budgets = sum(
            state.config.link.max_symbols * len(state.config.payloads)
            for state in self.states
        )
        return 64 + 16 * len(self.packets) + 8 * budgets

    def run(self) -> CellResult:
        """Simulate until every packet is resolved; return the metrics."""
        self.clock.run(
            max_events=self.max_events if self.max_events is not None else self._event_budget()
        )
        return self.result()

    def run_until(self, time: int) -> CellResult:
        """Advance the cell to ``time`` and return the metrics so far."""
        self.clock.run_until(
            time,
            max_events=self.max_events if self.max_events is not None else self._event_budget(),
        )
        return self.result()

    def result(self) -> CellResult:
        outcomes = []
        for packet in sorted(self.packets, key=lambda p: (p.user, p.index)):
            tx = packet.tx
            outcomes.append(
                PacketOutcome(
                    user=packet.user,
                    index=packet.index,
                    arrival=packet.arrival,
                    completed=packet.completed,
                    delivered=packet.delivered,
                    symbols_sent=0 if tx is None else int(tx.symbols_sent),
                    symbols_needed=int(tx.symbols_delivered) if packet.delivered else 0,
                    payload_bits=packet.payload_bits,
                )
            )
        return CellResult(
            scheduler=self.scheduler.name,
            n_users=len(self.states),
            packets=tuple(outcomes),
            makespan=self.closed_at,
        )


def simulate_cell(
    users: Sequence[CellUser],
    scheduler: Scheduler | str,
    seed: int = 20111114,
    max_events: int | None = None,
) -> CellResult:
    """Build and run one cell to completion (the one-call entry point)."""
    return MacCell(users, scheduler, seed=seed, max_events=max_events).run()
