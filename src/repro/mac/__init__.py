"""Multi-user shared-medium (cellular uplink) simulation layer.

The paper's headline argument is *network-level*: because spinal codes are
rateless, a wireless cell no longer needs an explicit rate-adaptation loop,
and the win shows up as aggregate goodput and fairness across many users
with different and time-varying SNRs.  This package provides the first
multi-user piece of the library:

* :mod:`repro.mac.cell` — a deterministic event-driven cell: N uplink users
  with private channels and packet queues contend for one shared medium,
  granted one subpass block at a time by a MAC scheduler;
* :mod:`repro.mac.schedulers` — round-robin TDMA, opportunistic max-SNR and
  proportional-fair schedulers behind one :class:`~repro.mac.schedulers.Scheduler`
  interface;
* :mod:`repro.mac.adaptive` — the network-level "status quo" baseline: each
  user runs threshold rate adaptation over *fixed-rate* spinal frames
  instead of a rateless session, so the paper's "rateless removes rate
  adaptation" claim can be measured at the cell level;
* :mod:`repro.mac.metrics` — aggregate/per-user goodput, Jain fairness and
  packet-latency statistics of a cell run.
"""

from repro.mac.adaptive import (
    AdaptiveCodecLink,
    AdaptiveCodecTransmission,
    AdaptiveSpinalLink,
    CodecRateOption,
    SpinalRateOption,
    calibrate_spinal_rate_policy,
    spinal_rate_options,
)
from repro.mac.cell import CellUser, MacCell, RatelessLink, simulate_cell, spread_snrs
from repro.mac.metrics import CellResult, PacketOutcome, jain_fairness_index
from repro.mac.schedulers import (
    MaxSnrScheduler,
    ProportionalFairScheduler,
    RoundRobinScheduler,
    Scheduler,
    UserView,
    make_scheduler,
)

__all__ = [
    "AdaptiveCodecLink",
    "AdaptiveCodecTransmission",
    "AdaptiveSpinalLink",
    "CellResult",
    "CellUser",
    "CodecRateOption",
    "SpinalRateOption",
    "calibrate_spinal_rate_policy",
    "spinal_rate_options",
    "MacCell",
    "MaxSnrScheduler",
    "PacketOutcome",
    "ProportionalFairScheduler",
    "RatelessLink",
    "RoundRobinScheduler",
    "Scheduler",
    "UserView",
    "jain_fairness_index",
    "make_scheduler",
    "simulate_cell",
    "spread_snrs",
]
