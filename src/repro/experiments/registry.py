"""Unified experiment registry and sweep engine.

Every experiment in this package is registered here as one declarative
:class:`Experiment`: a name, a description, a :class:`~repro.experiments.spec.SweepSpec`
of typed axes, a pure ``run_point(params, rng) -> Mapping`` kernel, and a
table/plot spec.  A single engine then provides, for *every* experiment:

* grid expansion with stable cell keys and report ordering;
* process fan-out of points *and* trials via
  :func:`repro.utils.parallel.stride_map`, with per-(cell, trial) seeds
  derived from ``(seed, labels...)`` so any worker count produces
  bit-identical results;
* persistence to a versioned JSON store
  (:class:`repro.utils.store.RunStore`) keyed by a content hash of the
  resolved spec, with cell-level resume: re-running the same spec recomputes
  nothing, and extending a sweep's axis values re-uses every compatible
  already-measured cell;
* structured error records: a kernel that raises turns its cell into an
  ``{"error": ...}`` aggregate instead of killing the whole sweep;
* declarative table rendering (``repro run`` / ``repro report``) and
  optional ASCII plots.

Kernels, aggregates, and seed-label functions must be *top-level* module
functions so experiments pickle across process boundaries.
"""

from __future__ import annotations

import csv
import importlib
import io
from dataclasses import dataclass, field
from functools import partial
from pathlib import Path
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.experiments.spec import (
    Axis,
    Column,
    PlotSpec,
    SweepSpec,
    format_key_value,
    spec_hash,
)
from repro.utils.asciiplot import ascii_plot
from repro.utils.parallel import stride_map
from repro.utils.results import mean, render_table, std_error
from repro.utils.rng import spawn_rng
from repro.utils.store import RunStore, STORE_SCHEMA_VERSION

__all__ = [
    "Experiment",
    "RunOutcome",
    "register",
    "get",
    "names",
    "all_experiments",
    "load_all",
    "run_experiment",
    "render_run",
    "render_run_csv",
    "render_run_plot",
    "default_aggregate",
    "catalog",
    "catalog_markdown",
    "EXPERIMENT_MODULES",
]

#: Modules that define and register experiments; imported by :func:`load_all`.
#: (``spec``, ``registry`` and ``metrics`` are infrastructure, not experiments.)
EXPERIMENT_MODULES = (
    "repro.experiments.runner",
    "repro.experiments.figure2",
    "repro.experiments.theorems",
    "repro.experiments.scale_down",
    "repro.experiments.k_sweep",
    "repro.experiments.puncturing",
    "repro.experiments.distance",
    "repro.experiments.blocklength",
    "repro.experiments.quantization",
    "repro.experiments.constellation_maps",
    "repro.experiments.ldpc_ablation",
    "repro.experiments.feedback",
    "repro.experiments.fixed_vs_rateless",
    "repro.experiments.transport_sweep",
    "repro.experiments.cell_scaling",
    "repro.experiments.cell_rateless_vs_adaptive",
    "repro.experiments.code_family_matrix",
    "repro.experiments.city_scaling",
    "repro.experiments.network_coding_gain",
)

_REGISTRY: dict[str, "Experiment"] = {}


@dataclass(frozen=True)
class Experiment:
    """One registered experiment: declarative spec plus a pure kernel.

    Attributes
    ----------
    name:
        Registry key, also the ``repro run <name>`` spelling.
    description:
        One line for ``repro list`` and the README catalog.
    spec:
        Typed axes plus fixed parameters.  The engine injects the resolved
        base seed as ``params["seed"]`` when calling the kernel/aggregate.
    run_point:
        Pure per-trial kernel ``(params, rng) -> Mapping`` returning
        JSON-native metrics.  Called once per (cell, trial) work unit, in a
        worker process.
    columns:
        Report table columns; each source names an aggregate metric, an
        axis, or a fixed parameter (looked up in that order).
    n_trials:
        Default trials per cell (1 for single-shot/analytical kernels).
    seed:
        Default base seed.
    aggregate:
        Optional ``(params, trials) -> Mapping`` reducing a cell's per-trial
        mappings; defaults to :func:`default_aggregate` (numeric means plus
        standard errors).  Runs in the parent process.
    seed_labels:
        Optional ``(params, trial) -> tuple`` of labels mixed with the base
        seed for the trial's generator.  Ported experiments use this to
        reproduce their historical streams bit-exactly; the default is
        ``(name, cell_key, trial)``.
    smoke:
        Overrides (may include ``n_trials``/``seed``) that shrink the
        experiment to a seconds-scale configuration for ``--smoke`` runs
        and CI.
    plot:
        Optional declarative ASCII plot.
    trial_invariant_axes:
        Axes the kernel's output provably does not depend on (the axis is
        consumed by ``aggregate`` only, e.g. the feedback ``model``).  The
        engine runs each trial once per *projected* cell and shares the
        results across the invariant axis instead of recomputing identical
        Monte-Carlo work per cell.
    max_trials:
        Upper bound on trials per cell, for kernels that derive all their
        randomness from the base seed (so extra trials would duplicate the
        first bit-for-bit and misreport their spread as statistics).
    """

    name: str
    description: str
    spec: SweepSpec
    run_point: Callable[[Mapping, np.random.Generator], Mapping]
    columns: tuple[Column, ...]
    n_trials: int = 1
    seed: int = 20111114
    aggregate: Callable[[Mapping, list], Mapping] | None = None
    seed_labels: Callable[[Mapping, int], tuple] | None = None
    smoke: Mapping[str, object] = field(default_factory=dict)
    plot: PlotSpec | None = None
    trial_invariant_axes: tuple[str, ...] = ()
    max_trials: int | None = None

    @property
    def module(self) -> str:
        """The module that defines this experiment's kernel."""
        return self.run_point.__module__


def register(experiment: Experiment) -> Experiment:
    """Add one experiment to the global registry (idempotent per identity)."""
    existing = _REGISTRY.get(experiment.name)
    if existing is not None and existing is not experiment:
        raise ValueError(f"experiment {experiment.name!r} is already registered")
    _REGISTRY[experiment.name] = experiment
    return experiment


def load_all() -> None:
    """Import every experiment module so the registry is fully populated."""
    for module in EXPERIMENT_MODULES:
        importlib.import_module(module)


def all_experiments() -> dict[str, Experiment]:
    load_all()
    return dict(_REGISTRY)


def names() -> list[str]:
    return sorted(all_experiments())


def get(name: str) -> Experiment:
    experiments = all_experiments()
    try:
        return experiments[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; registered: {sorted(experiments)}"
        ) from None


# -- aggregation --------------------------------------------------------------


def default_aggregate(params: Mapping, trials: list) -> dict:
    """Reduce a cell's trial mappings: numeric means plus standard errors.

    Booleans aggregate to their success fraction; strings must be constant
    and pass through; a single trial keeps integer metrics as integers so
    count-like quantities render cleanly.
    """
    out: dict = {}
    first = trials[0]
    for key, value in first.items():
        values = [t[key] for t in trials]
        if isinstance(value, bool):
            out[key] = mean([1.0 if v else 0.0 for v in values])
        elif isinstance(value, (int, float)):
            if len(values) == 1:
                out[key] = values[0]
            else:
                floats = [float(v) for v in values]
                out[key] = mean(floats)
                out[f"{key}_stderr"] = std_error(floats)
        else:
            out[key] = value
    return out


def _jsonify(value):
    """Coerce kernel/aggregate outputs to JSON-native types."""
    if isinstance(value, (np.bool_,)):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return [_jsonify(v) for v in value.tolist()]
    if isinstance(value, dict):
        return {str(k): _jsonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(v) for v in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(f"kernel returned non-JSON value {value!r}")


# -- the engine ---------------------------------------------------------------


def _unit_batch(
    experiment: Experiment,
    cells: list[tuple[str, dict]],
    label_keys: list[str],
    seed: int,
    batch: list[tuple[int, tuple[int, int]]],
) -> list[tuple[int, dict]]:
    """Run a batch of (cell, trial) units; the worker entry point.

    A top-level function so it pickles under any multiprocessing start
    method.  The trial generator is derived from ``(seed, labels...)``
    alone — with the default labels built from the cell's *projected* key
    (trial-invariant axes stripped), so shared trials hash identically no
    matter which sibling cell computed them — so outcomes are independent
    of worker count, batching, and cache state; a raising kernel yields a
    structured error record instead of poisoning the pool.
    """
    results = []
    for index, (cell_index, trial) in batch:
        _key, params = cells[cell_index]
        kernel_params = {**params, "seed": int(seed)}
        if experiment.seed_labels is not None:
            labels = experiment.seed_labels(kernel_params, trial)
        else:
            labels = (experiment.name, label_keys[cell_index], trial)
        rng = spawn_rng(seed, *labels)
        try:
            result = _jsonify(dict(experiment.run_point(kernel_params, rng)))
        except Exception as exc:  # noqa: BLE001 - converted to an error record
            result = {"error": f"{type(exc).__name__}: {exc}"}
        results.append((index, result))
    return results


def _aggregate_cell(experiment: Experiment, params: dict, seed: int, trials: list) -> dict:
    """Reduce one cell's trials, degrading failures to structured records.

    This is the API boundary that keeps ``mean``/``std_error``'s
    empty-input ``ValueError`` (and any aggregate bug) from killing a whole
    sweep: a cell with no successful trial — or whose aggregate raises —
    becomes ``{"error": ...}`` and the sweep carries on.
    """
    successes = [t for t in trials if "error" not in t]
    if not successes:
        return {"error": trials[0]["error"], "n_failed": len(trials)}
    aggregate_fn = experiment.aggregate or default_aggregate
    try:
        aggregate = _jsonify(dict(aggregate_fn({**params, "seed": int(seed)}, successes)))
    except Exception as exc:  # noqa: BLE001 - converted to an error record
        return {
            "error": f"aggregate failed: {type(exc).__name__}: {exc}",
            "n_failed": len(trials) - len(successes),
        }
    aggregate.setdefault("n_trials", len(successes))
    if len(successes) < len(trials):
        aggregate["n_failed"] = len(trials) - len(successes)
    return aggregate


def _compatible_spec(candidate: Mapping, target: Mapping) -> bool:
    """Whether a stored spec's cells are reusable for the target spec.

    Compatible means: identical fixed parameters, trial count, and seed,
    and identical axis names/kinds — only the axis *values* may differ
    (the grid was extended or subset).
    """
    if candidate.get("n_trials") != target["n_trials"]:
        return False
    if candidate.get("seed") != target["seed"]:
        return False
    a, b = candidate.get("spec", {}), target["spec"]
    if a.get("fixed") != b["fixed"]:
        return False
    strip = [
        [(axis["name"], axis["kind"], axis.get("optional", False)) for axis in s.get("axes", ())]
        for s in (a, b)
    ]
    return strip[0] == strip[1]


@dataclass
class RunOutcome:
    """Everything one engine invocation produced."""

    experiment: Experiment
    spec: SweepSpec
    record: dict
    path: Path | None
    n_cells_computed: int
    n_cells_cached: int

    def cells(self) -> list[tuple[str, dict, dict]]:
        """(key, params, cell record) triples in report order."""
        return [
            (key, params, self.record["cells"][key])
            for key, params in self.spec.cells()
        ]

    def successful_cells(self) -> list[tuple[str, dict, dict]]:
        """Like :meth:`cells`, but raise if any cell is an error record.

        The legacy wrapper functions promise rows for every grid point, so
        they surface the engine's structured error cells as one exception
        carrying the original kernel error text instead of failing later on
        a missing aggregate key.
        """
        cells = self.cells()
        errors = [
            f"{key}: {cell['aggregate']['error']}"
            for key, _params, cell in cells
            if "error" in cell["aggregate"]
        ]
        if errors:
            raise RuntimeError(
                f"experiment {self.experiment.name!r} had failing cells:\n"
                + "\n".join(f"  {line}" for line in errors)
            )
        return cells

    def table(self) -> str:
        return render_run(self.experiment, self.record)


def run_experiment(
    experiment: Experiment,
    overrides: Mapping[str, object] | None = None,
    *,
    n_workers: int = 1,
    n_trials: int | None = None,
    seed: int | None = None,
    store: RunStore | None = None,
    smoke: bool = False,
) -> RunOutcome:
    """Expand, (re)compute, aggregate, and optionally persist one sweep.

    ``overrides`` replace axis values or fixed parameters by name (the CLI
    maps ``--set axis=v1,v2`` here); ``smoke=True`` first applies the
    experiment's tiny smoke overrides.  With a ``store``, previously
    persisted cells of the same resolved spec — or of any compatible spec of
    the same experiment — are reused instead of recomputed, and the merged
    record is saved back, so interrupted or extended sweeps resume.
    """
    if n_workers < 1:
        raise ValueError(f"n_workers must be at least 1, got {n_workers}")
    merged: dict = {}
    if smoke:
        merged.update(experiment.smoke)
    if overrides:
        merged.update(overrides)
    default_trials = merged.pop("n_trials", experiment.n_trials)
    default_seed = merged.pop("seed", experiment.seed)
    resolved_trials = int(default_trials if n_trials is None else n_trials)
    resolved_seed = int(default_seed if seed is None else seed)
    if resolved_trials < 1:
        raise ValueError(f"n_trials must be at least 1, got {resolved_trials}")
    if experiment.max_trials is not None and resolved_trials > experiment.max_trials:
        raise ValueError(
            f"experiment {experiment.name!r} supports at most "
            f"{experiment.max_trials} trial(s) per cell — its kernel derives "
            "all randomness from the base seed, so extra trials would only "
            "duplicate the first"
        )
    spec = experiment.spec.with_values(merged)

    resolved_hash = spec_hash(experiment.name, spec, resolved_trials, resolved_seed)
    spec_document = {
        "spec": spec.to_dict(),
        "n_trials": resolved_trials,
        "seed": resolved_seed,
    }

    cells = spec.cells()
    cached: dict[str, dict] = {}
    if store is not None:
        exact = store.load_exact(experiment.name, resolved_hash)
        records = [exact] if exact is not None else [
            record
            for record in store.iter_records(experiment.name)
            if _compatible_spec(record, spec_document)
        ]
        wanted = {key for key, _ in cells}
        for record in records:
            for key, cell in record["cells"].items():
                # Error cells are never reused: a re-run after a fix must
                # recompute them.
                if key in wanted and "error" not in cell.get("aggregate", {}):
                    cached.setdefault(key, cell)

    missing = [i for i, (key, _) in enumerate(cells) if key not in cached]

    # Cells that differ only along trial-invariant axes share one kernel
    # run: group by the projected (variant-axes-only) key, compute one
    # representative per group — or lift trials from a cached sibling —
    # and fan the results back out.  With no invariant axes every group is
    # a singleton and this is a no-op.
    invariant = set(experiment.trial_invariant_axes)
    unknown = invariant - set(spec.axis_names)
    if unknown:
        raise ValueError(
            f"trial_invariant_axes name unknown axes: {sorted(unknown)}"
        )
    variant_axes = [axis for axis in spec.axes if axis.name not in invariant]
    groups: dict[tuple, list[int]] = {}
    label_keys: list[str] = []
    for i, (key, params) in enumerate(cells):
        projected = tuple((axis.name, params[axis.name]) for axis in variant_axes)
        groups.setdefault(projected, []).append(i)
        # Trial-stream identity for default seed labels: the invariant axes
        # are stripped so every sibling cell derives the same streams.
        label_keys.append(
            ",".join(f"{name}={format_key_value(value)}" for name, value in projected)
            if projected
            else key
        )

    group_trials: dict[tuple, list] = {}
    representatives: dict[tuple, int] = {}
    for projected, members in groups.items():
        missing_members = [i for i in members if cells[i][0] not in cached]
        if not missing_members:
            continue
        cached_members = [i for i in members if cells[i][0] in cached]
        if cached_members:
            group_trials[projected] = cached[cells[cached_members[0]][0]]["trials"]
        else:
            representatives[projected] = missing_members[0]

    compute_indices = sorted(representatives.values())
    units = [(i, trial) for i in compute_indices for trial in range(resolved_trials)]
    outcomes = stride_map(
        partial(_unit_batch, experiment, cells, label_keys, resolved_seed),
        units,
        n_workers,
    )

    trials_by_cell: dict[int, list] = {i: [] for i in compute_indices}
    for (cell_index, _), result in zip(units, outcomes):
        trials_by_cell[cell_index].append(result)
    for projected, members in groups.items():
        trials = group_trials.get(projected)
        if trials is None and projected in representatives:
            trials = trials_by_cell[representatives[projected]]
        for i in members:
            if cells[i][0] not in cached:
                trials_by_cell[i] = trials

    record_cells: dict[str, dict] = {}
    for i, (key, params) in enumerate(cells):
        if key in cached:
            record_cells[key] = cached[key]
            continue
        trials = trials_by_cell[i]
        axis_params = {name: params[name] for name in spec.axis_names}
        record_cells[key] = {
            "params": axis_params,
            "trials": trials,
            "aggregate": _aggregate_cell(experiment, params, resolved_seed, trials),
        }

    record = {
        "schema_version": STORE_SCHEMA_VERSION,
        "experiment": experiment.name,
        "description": experiment.description,
        "spec": spec_document["spec"],
        "n_trials": resolved_trials,
        "seed": resolved_seed,
        "spec_hash": resolved_hash,
        "cells": record_cells,
    }

    path = store.save(record) if store is not None else None
    return RunOutcome(
        experiment=experiment,
        spec=spec,
        record=record,
        path=path,
        n_cells_computed=len(compute_indices),
        n_cells_cached=len(cells) - len(missing),
    )


# -- rendering ----------------------------------------------------------------


def _lookup(column: Column, aggregate: Mapping, params: Mapping, fixed: Mapping):
    for mapping in (aggregate, params, fixed):
        if column.source in mapping:
            value = mapping[column.source]
            return column.none_text if value is None else value
    return ""


def _iter_report_rows(experiment: Experiment, record: Mapping):
    """Yield one ``(key, values, error)`` triple per persisted cell, in order.

    ``values`` holds the experiment's column values looked up in the cell's
    aggregate, its axis params, then the spec's fixed parameters; for an
    error cell the aggregate is withheld, so metric columns come back as
    ``""`` while real axis values — including falsy ones like 0 — keep the
    failed cell's coordinates readable.  ``error`` is the structured
    failure text (None for healthy cells).  The table and CSV renderers
    share this traversal so the two formats cannot drift apart.
    """
    spec = SweepSpec.from_dict(record["spec"])
    for key, _params in spec.cells():
        cell = record["cells"].get(key)
        if cell is None:
            continue
        aggregate = cell.get("aggregate", {})
        error = aggregate["error"] if "error" in aggregate else None
        values = [
            _lookup(column, {} if error is not None else aggregate,
                    cell.get("params", {}), spec.fixed)
            for column in experiment.columns
        ]
        yield key, values, error


def render_run(experiment: Experiment, record: Mapping) -> str:
    """Render a (possibly reloaded) run record as the experiment's table."""
    headers = [column.header for column in experiment.columns]
    rows = []
    errors = []
    for key, values, error in _iter_report_rows(experiment, record):
        if error is not None:
            errors.append(f"{key}: {error}")
            # Only lookup *misses* (metrics that never got computed) become
            # the ERR marker.
            rows.append(["ERR" if value == "" else value for value in values])
        else:
            rows.append(values)
    table = render_table(headers, rows)
    if errors:
        table += "\n\nfailed cells:\n" + "\n".join(f"  {line}" for line in errors)
    return table


def render_run_csv(experiment: Experiment, record: Mapping) -> str:
    """Render a (possibly reloaded) run record as CSV.

    Cells whose aggregate is a structured ``{"error": ...}`` record are not
    omitted: they become a row carrying the cell's axis coordinates, empty
    metric fields, and a ``note`` marker referencing a footnote line
    (``# [n] <cell>: <error>``) appended after the data — so downstream
    tooling sees every grid point and humans see why one is blank.
    """
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow([column.header for column in experiment.columns] + ["note"])
    footnotes: list[str] = []
    for key, values, error in _iter_report_rows(experiment, record):
        if error is not None:
            footnotes.append(f"[{len(footnotes) + 1}] {key}: {error}")
            writer.writerow(values + [f"[{len(footnotes)}]"])
        else:
            writer.writerow(values + [""])
    text = buffer.getvalue()
    if footnotes:
        text += "".join(f"# {line}\n" for line in footnotes)
    return text


def render_run_plot(experiment: Experiment, record: Mapping) -> str | None:
    """Render the experiment's declarative ASCII plot, if it defines one."""
    plot = experiment.plot
    if plot is None:
        return None
    spec = SweepSpec.from_dict(record["spec"])
    x_axis = spec.axis(plot.x)
    if len(x_axis.values) < 2:
        return None
    series_values: Sequence = (None,)
    if plot.series is not None:
        series_values = spec.axis(plot.series).values
    curves: dict[str, list[float]] = {}
    for series_value in series_values:
        label = plot.y if series_value is None else f"{plot.series}={series_value}"
        points = []
        for key, params in spec.cells():
            if series_value is not None and params[plot.series] != series_value:
                continue
            cell = record["cells"].get(key)
            if cell is None:
                return None
            aggregate = cell.get("aggregate", {})
            if "error" in aggregate or plot.y not in aggregate:
                return None
            points.append((params[plot.x], float(aggregate[plot.y])))
        # Average duplicates from axes the plot does not show.
        by_x: dict[float, list[float]] = {}
        for x, y in points:
            by_x.setdefault(float(x), []).append(y)
        curves[label] = [mean(by_x[float(x)]) for x in x_axis.values]
    return ascii_plot(
        [float(x) for x in x_axis.values],
        curves,
        x_label=plot.x_label or plot.x,
        y_label=plot.y_label or plot.y,
        connect=True,
    )


# -- catalog ------------------------------------------------------------------


def catalog() -> str:
    """Plain-text experiment catalog for ``repro list``."""
    lines = []
    for name in names():
        experiment = _REGISTRY[name]
        axes = ", ".join(
            f"{axis.name}[{len(axis.values)}]" for axis in experiment.spec.axes
        ) or "(single cell)"
        lines.append(f"{name:<20} {experiment.description}")
        lines.append(f"{'':<20}   axes: {axes}; trials/cell: {experiment.n_trials}")
    return "\n".join(lines)


def catalog_markdown() -> str:
    """Markdown experiment catalog (the README's "Experiments catalog")."""
    lines = [
        "| Experiment | Description | Axes | Trials/cell |",
        "| --- | --- | --- | --- |",
    ]
    for name in names():
        experiment = _REGISTRY[name]
        axes = ", ".join(
            f"`{axis.name}`={list(axis.values)!r}" if len(axis.values) <= 4
            else f"`{axis.name}` ({len(axis.values)} values)"
            for axis in experiment.spec.axes
        ) or "—"
        axes = axes.replace("|", "\\|")
        lines.append(
            f"| `{name}` | {experiment.description} | {axes} | {experiment.n_trials} |"
        )
    return "\n".join(lines)
