"""Experiment E5: the graceful scale-down property (rate versus beam width B).

Section 3.2: "As B grows, the rate achieved by the decoder gets closer to
capacity.  Interestingly, ... even small values of B achieve high rates close
to capacity."  This experiment sweeps B at a few SNRs and also records the
decoder work (tree nodes expanded) so the rate/complexity trade-off is
explicit.

Registered as ``scale-down``; ``scale_down_experiment`` is a thin wrapper
over the registry engine that adapts cells to the historical rows.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.registry import Experiment, register, run_experiment
from repro.experiments.runner import (
    SpinalRunConfig,
    awgn_seed_labels,
    awgn_trial,
    rate_cell_aggregate,
    require_engine_compatible,
    spinal_fixed,
    spinal_overrides,
)
from repro.experiments.spec import Axis, Column, PlotSpec, SweepSpec
from repro.theory.capacity import awgn_capacity_db
from repro.utils.results import render_table

__all__ = [
    "ScaleDownRow",
    "scale_down_experiment",
    "scale_down_table",
    "SCALE_DOWN_EXPERIMENT",
]

DEFAULT_BEAM_WIDTHS = (1, 2, 4, 8, 16, 32, 64, 256)


def scale_down_point(params, rng) -> dict:
    """Registry kernel: one spinal trial at this cell's beam width and SNR."""
    return awgn_trial(params, rng)


def _scale_down_fixed() -> dict:
    fixed = spinal_fixed()
    fixed.pop("beam_width")
    return fixed


SCALE_DOWN_EXPERIMENT = register(
    Experiment(
        name="scale-down",
        description="E5: graceful scale-down — spinal rate vs decoder beam width B",
        spec=SweepSpec(
            axes=(
                Axis("snr_db", (5.0, 10.0, 20.0), "float"),
                Axis("beam_width", DEFAULT_BEAM_WIDTHS, "int"),
            ),
            fixed=_scale_down_fixed(),
        ),
        run_point=scale_down_point,
        columns=(
            Column("SNR(dB)", "snr_db"),
            Column("B", "beam_width"),
            Column("mean rate", "rate"),
            Column("fraction of capacity", "fraction_of_capacity"),
            Column("tree nodes", "candidates"),
        ),
        n_trials=25,
        aggregate=rate_cell_aggregate,
        seed_labels=awgn_seed_labels,
        smoke={
            "payload_bits": 16,
            "k": 4,
            "c": 6,
            "n_trials": 2,
            "snr_db": (10.0,),
            "beam_width": (1, 4),
        },
        plot=PlotSpec(
            x="beam_width",
            y="rate",
            series="snr_db",
            x_label="beam width B",
            y_label="bits/symbol",
        ),
    )
)


@dataclass(frozen=True)
class ScaleDownRow:
    """One (SNR, B) measurement."""

    snr_db: float
    beam_width: int
    mean_rate: float
    fraction_of_capacity: float


def scale_down_experiment(
    snr_values_db=(5.0, 10.0, 20.0),
    beam_widths=DEFAULT_BEAM_WIDTHS,
    base_config: SpinalRunConfig | None = None,
) -> list[ScaleDownRow]:
    """Sweep the decoder beam width at several SNRs."""
    if base_config is None:
        base_config = SpinalRunConfig(n_trials=25)
    require_engine_compatible(base_config)
    overrides = spinal_overrides(base_config)
    overrides.pop("beam_width")
    overrides["snr_db"] = tuple(float(s) for s in snr_values_db)
    overrides["beam_width"] = tuple(int(b) for b in beam_widths)
    outcome = run_experiment(
        SCALE_DOWN_EXPERIMENT,
        overrides=overrides,
        n_trials=base_config.n_trials,
        seed=base_config.seed,
        n_workers=base_config.n_workers,
    )
    return [
        ScaleDownRow(
            snr_db=float(params["snr_db"]),
            beam_width=int(params["beam_width"]),
            mean_rate=cell["aggregate"]["rate"],
            fraction_of_capacity=cell["aggregate"]["fraction_of_capacity"],
        )
        for _key, params, cell in outcome.successful_cells()
    ]


def scale_down_table(rows: list[ScaleDownRow]) -> str:
    """Pivot the scale-down rows into one column per beam width."""
    snrs = sorted({row.snr_db for row in rows})
    beams = sorted({row.beam_width for row in rows})
    lookup = {(row.snr_db, row.beam_width): row.mean_rate for row in rows}
    headers = ["SNR(dB)", "capacity"] + [f"B={b}" for b in beams]
    table_rows = []
    for snr_db in snrs:
        row = [snr_db, awgn_capacity_db(snr_db)]
        row.extend(lookup.get((snr_db, b), float("nan")) for b in beams)
        table_rows.append(row)
    return render_table(headers, table_rows)


def monotonicity_violations(rows: list[ScaleDownRow], tolerance: float = 0.15) -> int:
    """Count (SNR, B) pairs where growing B reduced the rate by more than ``tolerance``.

    Used by tests as a sanity check of the scale-down property: small
    fluctuations are Monte-Carlo noise, large regressions would indicate a
    decoder bug.
    """
    violations = 0
    snrs = sorted({row.snr_db for row in rows})
    for snr_db in snrs:
        curve = sorted(
            (row for row in rows if row.snr_db == snr_db), key=lambda r: r.beam_width
        )
        rates = np.array([row.mean_rate for row in curve])
        drops = rates[:-1] - rates[1:]
        violations += int(np.sum(drops > tolerance * np.maximum(rates[:-1], 1e-9)))
    return violations
