"""Experiment E5: the graceful scale-down property (rate versus beam width B).

Section 3.2: "As B grows, the rate achieved by the decoder gets closer to
capacity.  Interestingly, ... even small values of B achieve high rates close
to capacity."  This experiment sweeps B at a few SNRs and also records the
decoder work (tree nodes expanded) so the rate/complexity trade-off is
explicit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.runner import SpinalRunConfig, run_spinal_point
from repro.theory.capacity import awgn_capacity_db
from repro.utils.results import render_table

__all__ = ["ScaleDownRow", "scale_down_experiment", "scale_down_table"]

DEFAULT_BEAM_WIDTHS = (1, 2, 4, 8, 16, 32, 64, 256)


@dataclass(frozen=True)
class ScaleDownRow:
    """One (SNR, B) measurement."""

    snr_db: float
    beam_width: int
    mean_rate: float
    fraction_of_capacity: float


def scale_down_experiment(
    snr_values_db=(5.0, 10.0, 20.0),
    beam_widths=DEFAULT_BEAM_WIDTHS,
    base_config: SpinalRunConfig | None = None,
) -> list[ScaleDownRow]:
    """Sweep the decoder beam width at several SNRs."""
    if base_config is None:
        base_config = SpinalRunConfig(n_trials=25)
    rows = []
    for snr_db in snr_values_db:
        capacity = awgn_capacity_db(float(snr_db))
        for beam_width in beam_widths:
            config = base_config.with_(beam_width=int(beam_width))
            measurement = run_spinal_point(config, float(snr_db))
            rows.append(
                ScaleDownRow(
                    snr_db=float(snr_db),
                    beam_width=int(beam_width),
                    mean_rate=measurement.mean_rate,
                    fraction_of_capacity=measurement.mean_rate / capacity,
                )
            )
    return rows


def scale_down_table(rows: list[ScaleDownRow]) -> str:
    """Pivot the scale-down rows into one column per beam width."""
    snrs = sorted({row.snr_db for row in rows})
    beams = sorted({row.beam_width for row in rows})
    lookup = {(row.snr_db, row.beam_width): row.mean_rate for row in rows}
    headers = ["SNR(dB)", "capacity"] + [f"B={b}" for b in beams]
    table_rows = []
    for snr_db in snrs:
        row = [snr_db, awgn_capacity_db(snr_db)]
        row.extend(lookup.get((snr_db, b), float("nan")) for b in beams)
        table_rows.append(row)
    return render_table(headers, table_rows)


def monotonicity_violations(rows: list[ScaleDownRow], tolerance: float = 0.15) -> int:
    """Count (SNR, B) pairs where growing B reduced the rate by more than ``tolerance``.

    Used by tests as a sanity check of the scale-down property: small
    fluctuations are Monte-Carlo noise, large regressions would indicate a
    decoder bug.
    """
    violations = 0
    snrs = sorted({row.snr_db for row in rows})
    for snr_db in snrs:
        curve = sorted(
            (row for row in rows if row.snr_db == snr_db), key=lambda r: r.beam_width
        )
        rates = np.array([row.mean_rate for row in curve])
        drops = rates[:-1] - rates[1:]
        violations += int(np.sum(drops > tolerance * np.maximum(rates[:-1], 1e-9)))
    return violations
