"""Experiment E15: measured transport goodput over the ARQ/relay grid.

Experiment E13 priced feedback with closed-form models; this sweep replaces
the formulas with the simulated sliding-window transport of
:mod:`repro.link.transport` and measures goodput over the full protocol
grid: ARQ policy (go-back-N vs selective-repeat) x window size x feedback
RTT (ACK delay) x hop count, optionally with ACK loss.  Every grid point
transports the *same* pseudo-random packet burst with the same per-packet
noise streams, so comparisons across points are paired.

Grid points are independent simulations, so ``n_workers`` fans them out
over worker processes exactly like the Monte-Carlo runner fans trials:
results are re-assembled in grid order and every random stream is derived
from ``(seed, labels...)`` irrespective of worker assignment, making the
sweep bit-deterministic for any worker count.
"""

from __future__ import annotations

import itertools
from dataclasses import asdict, dataclass, field, replace
from functools import partial

from repro.core.params import SpinalParams
from repro.experiments.registry import Experiment, register, run_experiment
from repro.experiments.runner import SpinalRunConfig
from repro.experiments.spec import Axis, Column, PlotSpec, SweepSpec
from repro.link.topology import build_relay_sessions, simulate_relay_transport
from repro.link.transport import TransportConfig
from repro.utils.bitops import random_message_bits
from repro.utils.parallel import stride_map
from repro.utils.results import render_table
from repro.utils.rng import spawn_rng

__all__ = [
    "TransportSweepConfig",
    "TransportSweepRow",
    "run_transport_sweep",
    "transport_sweep_table",
    "TRANSPORT_EXPERIMENT",
]


@dataclass(frozen=True)
class TransportSweepConfig:
    """One transport measurement campaign (the E15 grid).

    ``snr_db`` is the first hop's SNR; each additional hop degrades by
    ``snr_step_db`` (a pessimistic chain, the regime where relaying is
    interesting).  ``n_workers`` fans grid points over processes with
    results identical to the serial sweep.
    """

    payload_bits: int = 24
    params: SpinalParams = field(default_factory=lambda: SpinalParams(k=8, c=10))
    beam_width: int = 16
    adc_bits: int | None = 14
    puncturing: str = "tail-first"
    decoder: str = "incremental"
    snr_db: float = 8.0
    snr_step_db: float = -2.0
    n_packets: int = 8
    protocols: tuple[str, ...] = ("go-back-n", "selective-repeat")
    windows: tuple[int, ...] = (1, 2, 4)
    ack_delays: tuple[int, ...] = (0, 8, 32)
    hop_counts: tuple[int, ...] = (1, 2)
    ack_loss: float = 0.0
    max_symbols: int = 4096
    seed: int = 20111114
    n_workers: int = 1

    def __post_init__(self) -> None:
        if self.n_packets < 0:
            raise ValueError(f"n_packets must be non-negative, got {self.n_packets}")
        if self.n_workers < 1:
            raise ValueError(f"n_workers must be at least 1, got {self.n_workers}")
        if any(h < 1 for h in self.hop_counts):
            raise ValueError("hop counts must be at least 1")

    def with_(self, **changes) -> "TransportSweepConfig":
        return replace(self, **changes)

    # -- derived -------------------------------------------------------------
    def run_config(self) -> SpinalRunConfig:
        return SpinalRunConfig(
            payload_bits=self.payload_bits,
            params=self.params,
            beam_width=self.beam_width,
            adc_bits=self.adc_bits,
            puncturing=self.puncturing,
            decoder=self.decoder,
            max_symbols=self.max_symbols,
            search="sequential",
            seed=self.seed,
        )

    def hop_snrs(self, n_hops: int) -> list[float]:
        return [self.snr_db + hop * self.snr_step_db for hop in range(n_hops)]

    def payloads(self) -> list:
        return [
            random_message_bits(self.payload_bits, spawn_rng(self.seed, "transport-payload", i))
            for i in range(self.n_packets)
        ]

    def grid(self) -> list[tuple[int, str, int, int]]:
        """The (hops, protocol, window, ack_delay) points, in report order."""
        return list(
            itertools.product(self.hop_counts, self.protocols, self.windows, self.ack_delays)
        )


@dataclass(frozen=True)
class TransportSweepRow:
    """Measured outcome of one grid point."""

    hops: int
    protocol: str
    window: int
    ack_delay: int
    n_delivered: int
    n_packets: int
    goodput: float
    symbol_efficiency: float
    total_symbols: int
    acks_sent: int
    acks_lost: int
    makespan: int


def _sweep_point(
    config: TransportSweepConfig, point: tuple[int, str, int, int]
) -> TransportSweepRow:
    """Simulate one grid point; the worker entry point of the parallel sweep.

    A top-level function so it pickles under any multiprocessing start
    method.  Everything is rebuilt from the configs, so outcomes do not
    depend on which worker (or how many) ran the point.
    """
    n_hops, protocol, window, ack_delay = point
    sessions = build_relay_sessions(config.run_config(), config.hop_snrs(n_hops))
    transport = TransportConfig(
        protocol=protocol,
        window=window,
        ack_delay=ack_delay,
        ack_loss=config.ack_loss,
        seed=config.seed,
    )
    result = simulate_relay_transport(sessions, config.payloads(), transport)
    return TransportSweepRow(
        hops=n_hops,
        protocol=protocol,
        window=window,
        ack_delay=ack_delay,
        n_delivered=result.n_delivered,
        n_packets=result.n_packets,
        goodput=result.end_to_end_goodput,
        symbol_efficiency=result.symbol_efficiency,
        total_symbols=result.total_symbols_sent,
        acks_sent=sum(hop.acks_sent for hop in result.hops),
        acks_lost=sum(hop.acks_lost for hop in result.hops),
        makespan=result.makespan,
    )


def run_transport_sweep(config: TransportSweepConfig) -> list[TransportSweepRow]:
    """Measure every grid point; rows come back in :meth:`grid` order.

    Standard configurations route through the experiment registry (same
    stride-mapped fan-out, plus optional persistence via ``repro run
    transport``); configs with a non-default :class:`SpinalParams` — which
    the declarative spec does not carry — fall back to the direct
    stride-mapped sweep.  Both paths are bit-identical for any worker count.
    """
    if config.params != SpinalParams(k=config.params.k, c=config.params.c):
        return stride_map(partial(_sweep_batch, config), config.grid(), config.n_workers)
    outcome = run_experiment(
        TRANSPORT_EXPERIMENT,
        overrides={
            "hops": config.hop_counts,
            "protocol": config.protocols,
            "window": config.windows,
            "ack_delay": config.ack_delays,
            "payload_bits": config.payload_bits,
            "k": config.params.k,
            "c": config.params.c,
            "beam_width": config.beam_width,
            "adc_bits": config.adc_bits,
            "puncturing": config.puncturing,
            "decoder": config.decoder,
            "snr_db": config.snr_db,
            "snr_step_db": config.snr_step_db,
            "n_packets": config.n_packets,
            "ack_loss": config.ack_loss,
            "max_symbols": config.max_symbols,
        },
        seed=config.seed,
        n_workers=config.n_workers,
    )
    return [
        TransportSweepRow(**cell["trials"][0])
        for _key, _params, cell in outcome.successful_cells()
    ]


def _sweep_batch(
    config: TransportSweepConfig, batch: list[tuple[int, tuple[int, str, int, int]]]
) -> list[tuple[int, TransportSweepRow]]:
    return [(index, _sweep_point(config, point)) for index, point in batch]


def transport_point(params, rng) -> dict:
    """Registry kernel: simulate one (hops, protocol, window, delay) grid point.

    Deterministic given the parameters — the transport derives every stream
    from the injected base seed, so the engine-provided ``rng`` is unused.
    """
    config = TransportSweepConfig(
        payload_bits=int(params["payload_bits"]),
        params=SpinalParams(k=int(params["k"]), c=int(params["c"])),
        beam_width=int(params["beam_width"]),
        adc_bits=None if params["adc_bits"] is None else int(params["adc_bits"]),
        puncturing=str(params["puncturing"]),
        decoder=str(params["decoder"]),
        snr_db=float(params["snr_db"]),
        snr_step_db=float(params["snr_step_db"]),
        n_packets=int(params["n_packets"]),
        ack_loss=float(params["ack_loss"]),
        max_symbols=int(params["max_symbols"]),
        seed=int(params["seed"]),
    )
    row = _sweep_point(
        config,
        (
            int(params["hops"]),
            str(params["protocol"]),
            int(params["window"]),
            int(params["ack_delay"]),
        ),
    )
    return asdict(row)


TRANSPORT_EXPERIMENT = register(
    Experiment(
        name="transport",
        description="E15: measured ARQ/relay goodput over protocol × window × RTT × hops",
        spec=SweepSpec(
            axes=(
                Axis("hops", (1, 2), "int"),
                Axis("protocol", ("go-back-n", "selective-repeat"), "str"),
                Axis("window", (1, 2, 4), "int"),
                Axis("ack_delay", (0, 8, 32), "int"),
            ),
            fixed={
                "payload_bits": 24,
                "k": 8,
                "c": 10,
                "beam_width": 16,
                "adc_bits": 14,
                "puncturing": "tail-first",
                "decoder": "incremental",
                "snr_db": 8.0,
                "snr_step_db": -2.0,
                "n_packets": 8,
                "ack_loss": 0.0,
                "max_symbols": 4096,
            },
        ),
        run_point=transport_point,
        columns=(
            Column("hops", "hops"),
            Column("protocol", "protocol"),
            Column("window", "window"),
            Column("ack delay", "ack_delay"),
            Column("delivered", "n_delivered"),
            Column("goodput (b/sym-t)", "goodput"),
            Column("efficiency", "symbol_efficiency"),
            Column("symbols", "total_symbols"),
            Column("makespan", "makespan"),
        ),
        n_trials=1,
        max_trials=1,  # the simulation derives every stream from the base seed
        smoke={
            "hops": (1,),
            "protocol": ("selective-repeat",),
            "window": (1, 2),
            "ack_delay": (0,),
            "n_packets": 2,
            "max_symbols": 512,
            "payload_bits": 16,
            "k": 4,
            "c": 6,
            "beam_width": 8,
        },
        plot=PlotSpec(
            x="window",
            y="goodput",
            series="protocol",
            x_label="window size",
            y_label="goodput",
        ),
    )
)


def transport_sweep_table(rows: list[TransportSweepRow]) -> str:
    return render_table(
        [
            "hops",
            "protocol",
            "window",
            "ack delay",
            "delivered",
            "goodput (b/sym-t)",
            "efficiency",
            "symbols",
            "acks (lost)",
            "makespan",
        ],
        [
            (
                row.hops,
                row.protocol,
                row.window,
                row.ack_delay,
                f"{row.n_delivered}/{row.n_packets}",
                row.goodput,
                row.symbol_efficiency,
                row.total_symbols,
                f"{row.acks_sent} ({row.acks_lost})",
                row.makespan,
            )
            for row in rows
        ],
    )
