"""Experiments E3/E4: empirical checks of the paper's two theorems.

Theorem 1 (AWGN): the decoder succeeds once the number of passes ``L``
satisfies ``L (C - Δ) > k`` with ``Δ = ½ log2(πe/6) ≈ 0.2546``.  We measure
the empirical per-symbol rate gap ``C - rate`` across SNR and compare it to
``Δ`` (the measured gap should be of the same order, and the paper notes the
practical decoder does *better* than the bound at low SNR).

Theorem 2 (BSC): with bit-mode encoding over a binary symmetric channel the
rate should approach ``C_bsc(p) = 1 - H2(p)`` with no constant gap.

Both are registry experiments (``repro run theorem1-gap`` / ``repro run
theorem2-bsc``); the ``theorem*_experiment`` functions are thin wrappers
that run the registered spec and adapt the cells to the historical row
dataclasses.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.params import SpinalParams
from repro.experiments.registry import Experiment, register, run_experiment
from repro.experiments.runner import (
    SPINAL_SMOKE,
    SpinalRunConfig,
    awgn_seed_labels,
    awgn_trial,
    bsc_seed_labels,
    bsc_trial,
    rate_cell_aggregate,
    require_engine_compatible,
    spinal_fixed,
    spinal_overrides,
)
from repro.experiments.spec import Axis, Column, PlotSpec, SweepSpec
from repro.theory.bounds import spinal_awgn_rate_bound, spinal_gap_constant
from repro.utils.results import render_table

__all__ = [
    "Theorem1Row",
    "theorem1_gap_experiment",
    "theorem1_table",
    "Theorem2Row",
    "theorem2_bsc_experiment",
    "theorem2_table",
    "THEOREM1_EXPERIMENT",
    "THEOREM2_EXPERIMENT",
]


def theorem1_point(params, rng) -> dict:
    """Registry kernel: one spinal trial plus the Theorem-1 rate bound."""
    metrics = awgn_trial(params, rng)
    metrics["theorem_rate"] = spinal_awgn_rate_bound(float(params["snr_db"]))
    return metrics


def theorem1_aggregate(params, trials) -> dict:
    out = rate_cell_aggregate(params, trials)
    out["measured_gap"] = out["capacity"] - out["rate"]
    out["beats_bound"] = out["rate"] >= out["theorem_rate"]
    return out


THEOREM1_EXPERIMENT = register(
    Experiment(
        name="theorem1-gap",
        description="E3: capacity gap of the practical decoder vs the Theorem-1 bound",
        spec=SweepSpec(
            axes=(Axis("snr_db", (-5.0, 0.0, 5.0, 10.0, 15.0, 20.0), "float"),),
            fixed=spinal_fixed(payload_bits=32),
        ),
        run_point=theorem1_point,
        columns=(
            Column("SNR(dB)", "snr_db"),
            Column("capacity", "capacity"),
            Column("C - Δ (Thm 1)", "theorem_rate"),
            Column("measured", "rate"),
            Column("measured gap", "measured_gap"),
            Column("beats bound", "beats_bound"),
        ),
        n_trials=30,
        aggregate=theorem1_aggregate,
        seed_labels=awgn_seed_labels,
        smoke={**SPINAL_SMOKE, "snr_db": (5.0, 15.0)},
        plot=PlotSpec(x="snr_db", y="measured_gap", x_label="SNR (dB)", y_label="C - rate"),
    )
)


def theorem2_point(params, rng) -> dict:
    """Registry kernel: one bit-mode spinal trial over the BSC."""
    return bsc_trial(params, rng)


THEOREM2_EXPERIMENT = register(
    Experiment(
        name="theorem2-bsc",
        description="E4: bit-mode spinal rate over a BSC against C_bsc(p)",
        spec=SweepSpec(
            axes=(Axis("p", (0.01, 0.02, 0.05, 0.1, 0.2, 0.3), "float"),),
            fixed=spinal_fixed(payload_bits=32, k=4, bit_mode=True),
        ),
        run_point=theorem2_point,
        columns=(
            Column("p", "p"),
            Column("C_bsc", "capacity"),
            Column("measured", "rate"),
            Column("fraction of capacity", "fraction_of_capacity"),
        ),
        n_trials=30,
        aggregate=rate_cell_aggregate,
        seed_labels=bsc_seed_labels,
        smoke={"payload_bits": 16, "k": 4, "beam_width": 8, "n_trials": 2, "p": (0.05,)},
        plot=PlotSpec(x="p", y="rate", x_label="crossover probability", y_label="bits/bit"),
    )
)


@dataclass(frozen=True)
class Theorem1Row:
    """One SNR point of the Theorem-1 gap measurement."""

    snr_db: float
    capacity: float
    theorem_rate: float
    measured_rate: float

    @property
    def measured_gap(self) -> float:
        """Capacity minus measured rate, in bits/symbol."""
        return self.capacity - self.measured_rate

    @property
    def beats_theorem_bound(self) -> bool:
        """True when the practical decoder does at least as well as Theorem 1."""
        return self.measured_rate >= self.theorem_rate


def theorem1_gap_experiment(
    snr_values_db=(-5.0, 0.0, 5.0, 10.0, 15.0, 20.0),
    config: SpinalRunConfig | None = None,
) -> list[Theorem1Row]:
    """Measure the capacity gap of the practical decoder across SNR (E3)."""
    if config is None:
        config = SpinalRunConfig(payload_bits=32, n_trials=30)
    require_engine_compatible(config)
    outcome = run_experiment(
        THEOREM1_EXPERIMENT,
        overrides={
            **spinal_overrides(config),
            "snr_db": tuple(float(s) for s in snr_values_db),
        },
        n_trials=config.n_trials,
        seed=config.seed,
        n_workers=config.n_workers,
    )
    return [
        Theorem1Row(
            snr_db=float(params["snr_db"]),
            capacity=aggregate["capacity"],
            theorem_rate=aggregate["theorem_rate"],
            measured_rate=aggregate["rate"],
        )
        for _key, params, cell in outcome.successful_cells()
        for aggregate in (cell["aggregate"],)
    ]


def theorem1_table(rows: list[Theorem1Row]) -> str:
    """Render the Theorem-1 gap rows, including the Δ constant for reference."""
    header_note = f"Theorem 1 gap constant Δ = {spinal_gap_constant():.4f} bits/symbol"
    table = render_table(
        ["SNR(dB)", "capacity", "C - Δ (Thm 1)", "measured", "measured gap", "beats bound"],
        [
            (
                row.snr_db,
                row.capacity,
                row.theorem_rate,
                row.measured_rate,
                row.measured_gap,
                row.beats_theorem_bound,
            )
            for row in rows
        ],
    )
    return header_note + "\n" + table


@dataclass(frozen=True)
class Theorem2Row:
    """One crossover-probability point of the Theorem-2 BSC measurement."""

    crossover_probability: float
    capacity: float
    measured_rate: float

    @property
    def fraction_of_capacity(self) -> float:
        return self.measured_rate / self.capacity if self.capacity > 0 else 0.0


def theorem2_bsc_experiment(
    crossover_probabilities=(0.01, 0.02, 0.05, 0.1, 0.2, 0.3),
    config: SpinalRunConfig | None = None,
) -> list[Theorem2Row]:
    """Measure the BSC rate of bit-mode spinal codes against capacity (E4)."""
    if config is None:
        config = SpinalRunConfig(
            payload_bits=32,
            params=SpinalParams(k=4, bit_mode=True),
            puncturing="tail-first",
            n_trials=30,
        )
    if not config.params.bit_mode:
        raise ValueError("theorem2 experiment requires bit-mode parameters")
    require_engine_compatible(config)
    outcome = run_experiment(
        THEOREM2_EXPERIMENT,
        overrides={
            **spinal_overrides(config),
            "p": tuple(float(p) for p in crossover_probabilities),
        },
        n_trials=config.n_trials,
        seed=config.seed,
        n_workers=config.n_workers,
    )
    return [
        Theorem2Row(
            crossover_probability=float(params["p"]),
            capacity=cell["aggregate"]["capacity"],
            measured_rate=cell["aggregate"]["rate"],
        )
        for _key, params, cell in outcome.successful_cells()
    ]


def theorem2_table(rows: list[Theorem2Row]) -> str:
    return render_table(
        ["p", "C_bsc", "measured", "fraction of capacity"],
        [
            (row.crossover_probability, row.capacity, row.measured_rate, row.fraction_of_capacity)
            for row in rows
        ],
    )
