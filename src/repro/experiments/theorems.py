"""Experiments E3/E4: empirical checks of the paper's two theorems.

Theorem 1 (AWGN): the decoder succeeds once the number of passes ``L``
satisfies ``L (C - Δ) > k`` with ``Δ = ½ log2(πe/6) ≈ 0.2546``.  We measure
the empirical per-symbol rate gap ``C - rate`` across SNR and compare it to
``Δ`` (the measured gap should be of the same order, and the paper notes the
practical decoder does *better* than the bound at low SNR).

Theorem 2 (BSC): with bit-mode encoding over a binary symmetric channel the
rate should approach ``C_bsc(p) = 1 - H2(p)`` with no constant gap.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.params import SpinalParams
from repro.experiments.runner import (
    SpinalRunConfig,
    run_spinal_bsc_point,
    run_spinal_point,
)
from repro.theory.bounds import spinal_awgn_rate_bound, spinal_gap_constant
from repro.theory.capacity import awgn_capacity_db, bsc_capacity
from repro.utils.results import render_table

__all__ = [
    "Theorem1Row",
    "theorem1_gap_experiment",
    "theorem1_table",
    "Theorem2Row",
    "theorem2_bsc_experiment",
    "theorem2_table",
]


@dataclass(frozen=True)
class Theorem1Row:
    """One SNR point of the Theorem-1 gap measurement."""

    snr_db: float
    capacity: float
    theorem_rate: float
    measured_rate: float

    @property
    def measured_gap(self) -> float:
        """Capacity minus measured rate, in bits/symbol."""
        return self.capacity - self.measured_rate

    @property
    def beats_theorem_bound(self) -> bool:
        """True when the practical decoder does at least as well as Theorem 1."""
        return self.measured_rate >= self.theorem_rate


def theorem1_gap_experiment(
    snr_values_db=(-5.0, 0.0, 5.0, 10.0, 15.0, 20.0),
    config: SpinalRunConfig | None = None,
) -> list[Theorem1Row]:
    """Measure the capacity gap of the practical decoder across SNR (E3)."""
    if config is None:
        config = SpinalRunConfig(payload_bits=32, n_trials=30)
    rows = []
    for snr_db in snr_values_db:
        measurement = run_spinal_point(config, float(snr_db))
        rows.append(
            Theorem1Row(
                snr_db=float(snr_db),
                capacity=awgn_capacity_db(float(snr_db)),
                theorem_rate=spinal_awgn_rate_bound(float(snr_db)),
                measured_rate=measurement.mean_rate,
            )
        )
    return rows


def theorem1_table(rows: list[Theorem1Row]) -> str:
    """Render the Theorem-1 gap rows, including the Δ constant for reference."""
    header_note = f"Theorem 1 gap constant Δ = {spinal_gap_constant():.4f} bits/symbol"
    table = render_table(
        ["SNR(dB)", "capacity", "C - Δ (Thm 1)", "measured", "measured gap", "beats bound"],
        [
            (
                row.snr_db,
                row.capacity,
                row.theorem_rate,
                row.measured_rate,
                row.measured_gap,
                row.beats_theorem_bound,
            )
            for row in rows
        ],
    )
    return header_note + "\n" + table


@dataclass(frozen=True)
class Theorem2Row:
    """One crossover-probability point of the Theorem-2 BSC measurement."""

    crossover_probability: float
    capacity: float
    measured_rate: float

    @property
    def fraction_of_capacity(self) -> float:
        return self.measured_rate / self.capacity if self.capacity > 0 else 0.0


def theorem2_bsc_experiment(
    crossover_probabilities=(0.01, 0.02, 0.05, 0.1, 0.2, 0.3),
    config: SpinalRunConfig | None = None,
) -> list[Theorem2Row]:
    """Measure the BSC rate of bit-mode spinal codes against capacity (E4)."""
    if config is None:
        config = SpinalRunConfig(
            payload_bits=32,
            params=SpinalParams(k=4, bit_mode=True),
            puncturing="tail-first",
            n_trials=30,
        )
    if not config.params.bit_mode:
        raise ValueError("theorem2 experiment requires bit-mode parameters")
    rows = []
    for p in crossover_probabilities:
        measurement = run_spinal_bsc_point(config, float(p))
        rows.append(
            Theorem2Row(
                crossover_probability=float(p),
                capacity=bsc_capacity(float(p)),
                measured_rate=measurement.mean_rate,
            )
        )
    return rows


def theorem2_table(rows: list[Theorem2Row]) -> str:
    return render_table(
        ["p", "C_bsc", "measured", "fraction of capacity"],
        [
            (row.crossover_probability, row.capacity, row.measured_rate, row.fraction_of_capacity)
            for row in rows
        ],
    )
