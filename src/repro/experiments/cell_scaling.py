"""Experiment E16: cell goodput and fairness vs user count x MAC scheduler.

The paper's network-level claim needs a network: this sweep populates one
shared-medium cell (:mod:`repro.mac.cell`) with ``n_users`` rateless spinal
uplinks whose SNRs span a configurable spread, runs each MAC discipline of
:mod:`repro.mac.schedulers` over the identical traffic and noise streams,
and reports aggregate goodput, Jain fairness and latency percentiles.

Two physical regimes are worth sweeping (the ``channel`` parameter):

* ``awgn`` (default) — static per-user SNRs.  Per-packet symbol counts are
  then schedule-invariant, so every work-conserving scheduler produces the
  same aggregate goodput; differences show up in latency and ordering.
* ``sine:<period>:<amplitude>`` — per-user sinusoidal SNR traces pinned to
  the shared cell clock, phase-staggered across users.  Channel-aware
  schedulers now ride each user's crests, and the opportunistic gain the
  MAC literature promises becomes measurable.
* ``fading:<coherence>`` — per-user Rayleigh block fading (the scheduler
  observes only the mean SNR; the fades themselves stay private).

The kernel derives every random stream from the injected base seed, so the
sweep is deterministic per cell and worker-count invariant like every other
registry experiment (``max_trials = 1``).
"""

from __future__ import annotations

from repro.channels.awgn import AWGNChannel, TimeVaryingAWGNChannel
from repro.channels.fading import RayleighBlockFadingChannel
from repro.channels.traces import sinusoidal_trace
from repro.experiments.registry import Experiment, register
from repro.experiments.runner import spinal_config_from_params, spinal_fixed
from repro.experiments.spec import Axis, Column, PlotSpec, SweepSpec
from repro.mac.cell import CellUser, RatelessLink, simulate_cell, spread_snrs
from repro.mac.metrics import CellResult
from repro.mac.schedulers import SCHEDULER_NAMES, make_scheduler
from repro.utils.bitops import random_message_bits
from repro.utils.rng import spawn_rng

__all__ = [
    "build_cell_channel",
    "build_rateless_cell_users",
    "cell_metrics",
    "cell_scaling_point",
    "CELL_SCALING_EXPERIMENT",
]


def build_cell_channel(
    kind: str, snr_db: float, adc_bits: int | None, user: int, n_users: int
):
    """Build one user's channel from the experiment's ``channel`` string.

    ``awgn`` | ``sine:<period>:<amplitude>`` | ``fading:<coherence>`` — see
    the module docstring for when each regime is interesting.  Sine traces
    are phase-staggered by user (user ``u`` leads by ``u / n_users`` of a
    period) so crests do not line up across the cell.
    """
    name, _, arguments = kind.partition(":")
    if name == "awgn":
        return AWGNChannel(snr_db=snr_db, adc_bits=adc_bits)
    if name == "sine":
        period_text, _, amplitude_text = arguments.partition(":")
        period = int(period_text)
        amplitude = float(amplitude_text) if amplitude_text else 6.0
        phase = 2.0 * 3.141592653589793 * user / max(n_users, 1)
        trace = sinusoidal_trace(snr_db, amplitude, period, length=period, phase=phase)
        return TimeVaryingAWGNChannel(trace, adc_bits=adc_bits)
    if name == "fading":
        coherence = int(arguments) if arguments else 16
        return RayleighBlockFadingChannel(snr_db, coherence_symbols=coherence)
    raise ValueError(
        f"unknown channel kind {kind!r}; expected 'awgn', 'sine:<period>[:<amp>]' "
        "or 'fading:[<coherence>]'"
    )


def build_rateless_cell_users(params, snrs_db) -> list[CellUser]:
    """One rateless :class:`CellUser` per SNR, streams derived from the seed."""
    config = spinal_config_from_params(params)
    seed = int(params["seed"])
    packets_per_user = int(params["packets_per_user"])
    users = []
    for user, snr_db in enumerate(snrs_db):
        channel = build_cell_channel(
            str(params["channel"]), float(snr_db), config.adc_bits, user, len(snrs_db)
        )
        session = config.build_session(
            channel, max_symbols=int(params["max_symbols"]), search="sequential"
        )
        payloads = [
            random_message_bits(
                config.payload_bits, spawn_rng(seed, "cell-payload", user, i)
            )
            for i in range(packets_per_user)
        ]
        users.append(CellUser(RatelessLink(session), payloads))
    return users


def cell_metrics(result: CellResult) -> dict:
    """JSON-native summary of one cell run (the kernels' return value)."""
    per_user = result.per_user_goodput()
    return {
        "goodput": result.aggregate_goodput,
        "fairness": result.jain_fairness,
        "delivered": result.n_delivered,
        "n_packets": result.n_packets,
        "delivered_fraction": result.delivered_fraction,
        "mean_latency": result.mean_latency,
        "p90_latency": result.latency_percentile(90.0),
        "min_user_goodput": float(per_user.min()),
        "max_user_goodput": float(per_user.max()),
        "total_symbols": result.total_symbols_sent,
        "makespan": result.makespan,
    }


def cell_scaling_point(params, rng) -> dict:
    """Registry kernel: one (n_users, scheduler) cell simulation.

    Deterministic given the parameters — every stream derives from the
    injected base seed, so the engine-provided ``rng`` is unused.
    """
    n_users = int(params["n_users"])
    snrs = spread_snrs(
        float(params["snr_center_db"]), float(params["snr_spread_db"]), n_users
    )
    users = build_rateless_cell_users(params, snrs)
    result = simulate_cell(
        users, make_scheduler(str(params["scheduler"])), seed=int(params["seed"])
    )
    return cell_metrics(result)


CELL_SCALING_EXPERIMENT = register(
    Experiment(
        name="cell-scaling",
        description="E16: multi-user cell goodput/fairness vs user count × MAC scheduler",
        spec=SweepSpec(
            axes=(
                Axis("n_users", (1, 2, 4, 8, 16), "int"),
                Axis("scheduler", SCHEDULER_NAMES, "str"),
            ),
            fixed={
                **spinal_fixed(search="sequential", max_symbols=4096),
                "snr_center_db": 12.0,
                "snr_spread_db": 12.0,
                "packets_per_user": 4,
                "channel": "awgn",
            },
        ),
        run_point=cell_scaling_point,
        columns=(
            Column("users", "n_users"),
            Column("scheduler", "scheduler"),
            Column("goodput (b/sym-t)", "goodput"),
            Column("fairness", "fairness"),
            Column("delivered", "delivered"),
            Column("mean latency", "mean_latency"),
            Column("p90 latency", "p90_latency"),
            Column("makespan", "makespan"),
        ),
        n_trials=1,
        max_trials=1,  # the simulation derives every stream from the base seed
        smoke={
            "n_users": (1, 2, 4),
            "scheduler": SCHEDULER_NAMES,
            "packets_per_user": 2,
            "max_symbols": 512,
            "snr_spread_db": 8.0,
            "payload_bits": 16,
            "k": 4,
            "c": 6,
            "beam_width": 8,
        },
        plot=PlotSpec(
            x="n_users",
            y="goodput",
            series="scheduler",
            x_label="users in the cell",
            y_label="aggregate goodput",
        ),
    )
)
