"""Shared Monte-Carlo runner for spinal-code rate measurements.

Every experiment that measures "rate achieved by the practical decoder at
operating point X" goes through :class:`SpinalRunConfig` and the
``run_spinal_*`` functions here, so that trial seeding, symbol budgets and
termination handling are consistent across figures.

The symbol budget per trial is chosen adaptively from the channel capacity
at the operating point (a trial is allowed several times the number of
symbols an ideal code would need) so that low-SNR points neither truncate
trials prematurely nor waste time transmitting far past the decoding point.

Two performance knobs, both result-preserving:

* ``decoder`` selects the receiver's decoding engine: ``"incremental"``
  (default — :class:`IncrementalBubbleDecoder`, which reuses beam state
  across a trial's decode attempts), ``"vectorized"``
  (:class:`~repro.core.decoder_vectorized.VectorizedBubbleDecoder`, the
  whole-beam array-op engine) or ``"bubble"`` (the from-scratch reference
  :class:`BubbleDecoder`).  All engines produce bit-identical trial
  outcomes; the stateful ones just evaluate far fewer tree nodes.
* ``n_workers`` fans the point's independent trials out over worker
  *processes*.  Every trial derives its generator from
  ``spawn_rng(seed, "trial", label, trial)`` regardless of which worker
  runs it and results are re-assembled in trial order, so any worker count
  returns exactly the same measurement as ``n_workers=1``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from functools import partial

from repro.channels.awgn import AWGNChannel
from repro.channels.base import Channel
from repro.channels.bsc import BSCChannel
from repro.core.crc import Crc
from repro.core.decoder_vectorized import DECODER_ENGINES, make_decoder_factory
from repro.core.encoder import SpinalEncoder
from repro.core.framing import Framer
from repro.core.params import SpinalParams
from repro.core.puncturing import (
    NoPuncturing,
    PuncturingSchedule,
    StridedPuncturing,
    SymbolBySymbol,
    TailFirstPuncturing,
)
from repro.core.rateless import RatelessSession
from repro.experiments.registry import Experiment, default_aggregate, register
from repro.experiments.spec import Axis, Column, PlotSpec, SweepSpec
from repro.theory.capacity import awgn_capacity_db, bsc_capacity
from repro.utils.bitops import random_message_bits
from repro.utils.parallel import stride_map
from repro.utils.results import RateMeasurement, SweepResult, mean, std_error
from repro.utils.rng import spawn_rng

__all__ = [
    "SpinalRunConfig",
    "make_puncturing",
    "run_spinal_point",
    "run_spinal_curve",
    "run_spinal_bsc_point",
    "run_spinal_bsc_curve",
    "spinal_fixed",
    "spinal_overrides",
    "spinal_config_from_params",
    "is_engine_compatible",
    "require_engine_compatible",
    "run_one_spinal_trial",
    "awgn_trial",
    "bsc_trial",
    "awgn_seed_labels",
    "bsc_seed_labels",
    "rate_cell_aggregate",
    "SPINAL_SMOKE",
    "RATE_EXPERIMENT",
    "BSC_EXPERIMENT",
]

#: Budget multiplier: a trial may use this many times the symbols an ideal
#: capacity-achieving code would need before it is declared a failure.
_BUDGET_FACTOR = 8.0
#: Lower bound on the per-trial budget, in passes over the spine.
_MIN_BUDGET_PASSES = 4
#: Hard ceiling on the per-trial budget (protects the lowest SNR points).
_MAX_BUDGET_SYMBOLS = 32768


def make_puncturing(name: str, **kwargs) -> PuncturingSchedule:
    """Build a puncturing schedule from its experiment-config name."""
    schedules = {
        "none": NoPuncturing,
        "symbol": SymbolBySymbol,
        "strided": StridedPuncturing,
        "tail-first": TailFirstPuncturing,
    }
    try:
        cls = schedules[name]
    except KeyError:
        raise ValueError(
            f"unknown puncturing schedule {name!r}; expected one of {sorted(schedules)}"
        ) from None
    return cls(**kwargs)


@dataclass(frozen=True)
class SpinalRunConfig:
    """One spinal-code operating configuration for Monte-Carlo measurement.

    The defaults reproduce the paper's Figure 2 configuration: 24-bit
    messages, ``k = 8``, ``c = 10``, beam width ``B = 16``, 14-bit ADC,
    genie termination, with decode attempts after every symbol.

    ``decoder`` picks the decoding engine (``"incremental"`` by default,
    ``"vectorized"`` for the whole-beam array-op engine, ``"bubble"`` for
    the from-scratch reference — identical results either way, different
    amounts of work) and ``n_workers`` the number of worker processes the point's
    trials are fanned out over (any value returns results identical to
    ``n_workers=1``; see the module docstring).
    """

    payload_bits: int = 24
    params: SpinalParams = field(default_factory=lambda: SpinalParams(k=8, c=10))
    beam_width: int = 16
    adc_bits: int | None = 14
    puncturing: str = "tail-first"
    crc: Crc | None = None
    tail_segments: int = 0
    termination: str = "genie"
    search: str = "bisect"
    n_trials: int = 30
    seed: int = 20111114
    max_symbols: int | None = None
    count_overhead: bool = False
    decoder: str = "incremental"
    n_workers: int = 1

    def __post_init__(self) -> None:
        if self.decoder not in DECODER_ENGINES:
            raise ValueError(
                f"unknown decoder {self.decoder!r}; "
                f"expected one of {sorted(DECODER_ENGINES)}"
            )
        if self.n_workers < 1:
            raise ValueError(f"n_workers must be at least 1, got {self.n_workers}")

    def with_(self, **changes) -> "SpinalRunConfig":
        """Copy with fields replaced (sweep convenience)."""
        return replace(self, **changes)

    # -- builders -----------------------------------------------------------
    def build_framer(self) -> Framer:
        return Framer(
            payload_bits=self.payload_bits,
            k=self.params.k,
            crc=self.crc,
            tail_segments=self.tail_segments,
        )

    def build_encoder(self) -> SpinalEncoder:
        return SpinalEncoder(self.params, puncturing=make_puncturing(self.puncturing))

    def decoder_factory(self):
        return make_decoder_factory(self.decoder, self.beam_width)

    def build_session(
        self,
        channel: Channel,
        max_symbols: int | None = None,
        search: str | None = None,
    ) -> RatelessSession:
        """Assemble the complete rateless session for one channel.

        The single place session wiring happens, shared by the Monte-Carlo
        trial runner and the relay-topology builder so the two cannot
        drift.  ``max_symbols`` defaults to the config's value (or 4096 if
        unset — callers wanting the adaptive budget pass
        :meth:`symbol_budget` explicitly); ``search`` defaults to the
        config's strategy.
        """
        if max_symbols is None:
            max_symbols = self.max_symbols if self.max_symbols is not None else 4096
        return RatelessSession(
            self.build_encoder(),
            decoder_factory=self.decoder_factory(),
            channel=channel,
            framer=self.build_framer(),
            termination=self.termination,
            max_symbols=max_symbols,
            search=search if search is not None else self.search,
            count_overhead=self.count_overhead,
        )

    def symbol_budget(self, ideal_rate: float) -> int:
        """Adaptive per-trial symbol budget given an ideal achievable rate."""
        if self.max_symbols is not None:
            return self.max_symbols
        framer = self.build_framer()
        floor_budget = _MIN_BUDGET_PASSES * framer.n_segments
        if ideal_rate <= 0:
            return _MAX_BUDGET_SYMBOLS
        budget = int(math.ceil(_BUDGET_FACTOR * framer.framed_bits / ideal_rate))
        return max(floor_budget, min(budget, _MAX_BUDGET_SYMBOLS))


def _trial_batch(
    config: SpinalRunConfig,
    channel: Channel,
    max_symbols: int,
    label: float | None,
    batch: list[tuple[int, int]],
) -> list[tuple[int, tuple[float, int, bool]]]:
    """Run a batch of trials; the worker entry point of the parallel runner.

    A top-level function so it pickles under any multiprocessing start
    method.  Each trial spawns its generator from the trial index alone, so
    the outcome is independent of how trials are batched across workers.
    """
    session = config.build_session(channel, max_symbols)
    outcomes = []
    for index, trial in batch:
        rng = spawn_rng(config.seed, "trial", label, trial)
        payload = random_message_bits(config.payload_bits, rng)
        result = session._run(payload, rng)
        outcomes.append((index, (result.rate, result.symbols_sent, result.payload_correct)))
    return outcomes


def _run_point(
    config: SpinalRunConfig,
    channel: Channel,
    ideal_rate: float,
    snr_db: float | None,
    param: float | None,
) -> RateMeasurement:
    """Run ``config.n_trials`` independent trials over one channel instance."""
    label = snr_db if snr_db is not None else param
    max_symbols = config.symbol_budget(ideal_rate)
    outcomes = stride_map(
        partial(_trial_batch, config, channel, max_symbols, label),
        list(range(config.n_trials)),
        config.n_workers,
    )
    measurement = RateMeasurement(snr_db=snr_db, param=param)
    for rate, symbols, ok in outcomes:
        measurement.add_trial(rate, symbols, ok)
    return measurement


def run_spinal_point(config: SpinalRunConfig, snr_db: float) -> RateMeasurement:
    """Measure the spinal code's achieved rate at one AWGN SNR."""
    if config.params.bit_mode:
        raise ValueError("AWGN measurements need symbol-mode params (bit_mode=False)")
    channel = AWGNChannel(
        snr_db=snr_db,
        signal_power=config.params.average_power,
        adc_bits=config.adc_bits,
    )
    return _run_point(
        config, channel, ideal_rate=awgn_capacity_db(snr_db), snr_db=snr_db, param=None
    )


def run_spinal_curve(
    config: SpinalRunConfig, snr_values_db, name: str = "Spinal"
) -> SweepResult:
    """Measure the spinal rate-vs-SNR curve over a list of SNRs."""
    sweep = SweepResult(name=name, metadata={"config": config})
    for snr_db in snr_values_db:
        sweep.add_point(run_spinal_point(config, float(snr_db)))
    return sweep


def run_spinal_bsc_point(config: SpinalRunConfig, crossover_probability: float) -> RateMeasurement:
    """Measure the spinal code's achieved rate over a BSC (bit mode)."""
    if not config.params.bit_mode:
        raise ValueError("BSC measurements need bit-mode params (bit_mode=True)")
    channel = BSCChannel(crossover_probability)
    return _run_point(
        config,
        channel,
        ideal_rate=bsc_capacity(crossover_probability),
        snr_db=None,
        param=crossover_probability,
    )


def run_spinal_bsc_curve(
    config: SpinalRunConfig, crossover_probabilities, name: str = "Spinal (BSC)"
) -> SweepResult:
    """Measure the spinal rate-vs-crossover-probability curve over a BSC."""
    sweep = SweepResult(name=name, metadata={"config": config})
    for p in crossover_probabilities:
        sweep.add_point(run_spinal_bsc_point(config, float(p)))
    return sweep


# -- registry bindings --------------------------------------------------------
#
# The declarative side of the Monte-Carlo runner: JSON-native parameter
# mappings in and out, so every spinal-rate experiment can be expressed as a
# registry spec.  The kernels replicate the historical per-trial streams
# (``spawn_rng(seed, "trial", label, trial)``) bit-exactly, which is what
# keeps the ported experiment modules' numbers identical to their
# pre-registry versions.

#: Fixed parameters shared by every spinal-rate experiment spec.
_SPINAL_FIXED = {
    "payload_bits": 24,
    "k": 8,
    "c": 10,
    "beam_width": 16,
    "adc_bits": 14,
    "puncturing": "tail-first",
    "constellation": "linear",
    "decoder": "incremental",
    "bit_mode": False,
    "search": "bisect",
    "max_symbols": None,
}


def spinal_fixed(**updates) -> dict:
    """The paper's Figure-2 spinal configuration as spec fixed parameters."""
    fixed = dict(_SPINAL_FIXED)
    fixed.update(updates)
    return fixed


def spinal_config_from_params(params) -> SpinalRunConfig:
    """Build a :class:`SpinalRunConfig` from a JSON-native parameter mapping."""
    spinal = SpinalParams(
        k=int(params["k"]),
        c=int(params.get("c", 10)),
        bit_mode=bool(params.get("bit_mode", False)),
        constellation=str(params.get("constellation", "linear")),
    )
    adc_bits = params.get("adc_bits", 14)
    max_symbols = params.get("max_symbols")
    return SpinalRunConfig(
        payload_bits=int(params["payload_bits"]),
        params=spinal,
        beam_width=int(params["beam_width"]),
        adc_bits=None if adc_bits is None else int(adc_bits),
        puncturing=str(params.get("puncturing", "tail-first")),
        decoder=str(params.get("decoder", "incremental")),
        search=str(params.get("search", "bisect")),
        max_symbols=None if max_symbols is None else int(max_symbols),
        seed=int(params.get("seed", 20111114)),
    )


def spinal_overrides(config: SpinalRunConfig) -> dict:
    """Spec overrides reproducing a :class:`SpinalRunConfig` (wrapper glue)."""
    return {
        "payload_bits": config.payload_bits,
        "k": config.params.k,
        "c": config.params.c,
        "beam_width": config.beam_width,
        "adc_bits": config.adc_bits,
        "puncturing": config.puncturing,
        "constellation": config.params.constellation,
        "decoder": config.decoder,
        "bit_mode": config.params.bit_mode,
        "search": config.search,
        "max_symbols": config.max_symbols,
    }


def is_engine_compatible(config: SpinalRunConfig) -> bool:
    """Whether a config is expressible as a registry spec.

    The declarative specs cover the parameters the experiments actually
    sweep (including ``search`` and ``max_symbols``); configs using the
    exotic knobs (CRC framing, tail segments, non-genie termination,
    overhead accounting, a custom hash-family seed or signal power) fall
    back to the direct runner functions.
    """
    return (
        config.crc is None
        and config.tail_segments == 0
        and config.termination == "genie"
        and config.count_overhead is False
        and config.params.seed == SpinalParams().seed
        and config.params.average_power == 1.0
    )


def require_engine_compatible(config: SpinalRunConfig) -> None:
    """Raise if a config cannot be expressed as a registry spec."""
    if not is_engine_compatible(config):
        raise ValueError(
            "this experiment is registry-driven and only supports the declarative "
            "spinal parameters; configs using crc, tail_segments, termination, "
            "count_overhead, or a custom hash-family seed/signal power must use "
            "repro.experiments.runner directly"
        )


def run_one_spinal_trial(
    config: SpinalRunConfig, channel: Channel, max_symbols: int, rng
) -> dict:
    """One rateless transmission, as JSON-native metrics (kernel primitive)."""
    session = config.build_session(channel, max_symbols)
    payload = random_message_bits(config.payload_bits, rng)
    result = session._run(payload, rng)
    return {
        "rate": result.rate,
        "symbols": result.symbols_sent,
        "ok": result.payload_correct,
        "candidates": result.candidates_explored,
    }


def awgn_trial(params, rng) -> dict:
    """Registry kernel: one spinal trial over AWGN at ``params['snr_db']``."""
    config = spinal_config_from_params(params)
    snr_db = float(params["snr_db"])
    channel = AWGNChannel(
        snr_db=snr_db,
        signal_power=config.params.average_power,
        adc_bits=config.adc_bits,
    )
    capacity = awgn_capacity_db(snr_db)
    metrics = run_one_spinal_trial(config, channel, config.symbol_budget(capacity), rng)
    metrics["capacity"] = capacity
    return metrics


def bsc_trial(params, rng) -> dict:
    """Registry kernel: one bit-mode spinal trial over a BSC at ``params['p']``."""
    config = spinal_config_from_params(params)
    p = float(params["p"])
    capacity = bsc_capacity(p)
    metrics = run_one_spinal_trial(
        config, BSCChannel(p), config.symbol_budget(capacity), rng
    )
    metrics["capacity"] = capacity
    return metrics


def awgn_seed_labels(params, trial) -> tuple:
    """The historical per-trial stream labels of :func:`run_spinal_point`."""
    return ("trial", float(params["snr_db"]), trial)


def bsc_seed_labels(params, trial) -> tuple:
    """The historical per-trial stream labels of :func:`run_spinal_bsc_point`."""
    return ("trial", float(params["p"]), trial)


def rate_cell_aggregate(params, trials) -> dict:
    """Per-cell aggregate for rate kernels: mean/stderr plus capacity fraction."""
    out = default_aggregate(params, trials)
    rates = [float(t["rate"]) for t in trials]
    out["rate"] = mean(rates)
    out["rate_stderr"] = std_error(rates)
    capacity = out.get("capacity")
    if isinstance(capacity, (int, float)) and capacity > 0:
        out["fraction_of_capacity"] = out["rate"] / capacity
    return out


SPINAL_SMOKE = {
    "payload_bits": 16,
    "k": 4,
    "c": 6,
    "beam_width": 8,
    "n_trials": 2,
}

RATE_EXPERIMENT = register(
    Experiment(
        name="rate",
        description="Spinal achieved rate vs AWGN SNR (the core Monte-Carlo measurement)",
        spec=SweepSpec(
            axes=(Axis("snr_db", (0.0, 5.0, 10.0, 15.0, 20.0, 25.0), "float"),),
            fixed=spinal_fixed(),
        ),
        run_point=awgn_trial,
        columns=(
            Column("SNR(dB)", "snr_db"),
            Column("capacity", "capacity"),
            Column("rate (b/sym)", "rate"),
            Column("stderr", "rate_stderr"),
        ),
        n_trials=30,
        aggregate=rate_cell_aggregate,
        seed_labels=awgn_seed_labels,
        smoke={**SPINAL_SMOKE, "snr_db": (10.0,)},
        plot=PlotSpec(x="snr_db", y="rate", x_label="SNR (dB)", y_label="bits/symbol"),
    )
)

BSC_EXPERIMENT = register(
    Experiment(
        name="bsc",
        description="Bit-mode spinal achieved rate vs BSC crossover probability",
        spec=SweepSpec(
            axes=(Axis("p", (0.01, 0.02, 0.05, 0.1, 0.2), "float"),),
            fixed=spinal_fixed(bit_mode=True),
        ),
        run_point=bsc_trial,
        columns=(
            Column("p", "p"),
            Column("capacity", "capacity"),
            Column("rate (b/bit)", "rate"),
            Column("stderr", "rate_stderr"),
        ),
        n_trials=30,
        aggregate=rate_cell_aggregate,
        seed_labels=bsc_seed_labels,
        smoke={"payload_bits": 12, "k": 3, "beam_width": 8, "n_trials": 2, "p": (0.05,)},
        plot=PlotSpec(
            x="p", y="rate", x_label="crossover probability", y_label="bits/channel bit"
        ),
    )
)
