"""Experiment E6: the role of the segment size k.

Section 3.1: "the computational complexity of the decoder grows
exponentially with k, while the maximum rate achievable by the code grows
linearly with k".  This experiment sweeps k at fixed SNR and message length
and reports both the achieved rate and the decoder work per delivered
message, making that trade-off measurable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.params import SpinalParams
from repro.core.rateless import RatelessSession
from repro.experiments.runner import SpinalRunConfig
from repro.channels.awgn import AWGNChannel
from repro.utils.bitops import random_message_bits
from repro.utils.results import render_table
from repro.utils.rng import spawn_rng

__all__ = ["KSweepRow", "k_sweep_experiment", "k_sweep_table"]


@dataclass(frozen=True)
class KSweepRow:
    """Aggregate outcome for one segment size."""

    k: int
    snr_db: float
    mean_rate: float
    mean_candidates_per_message: float
    max_rate_bound: float


def k_sweep_experiment(
    k_values=(2, 3, 4, 6, 8),
    snr_db: float = 15.0,
    payload_bits: int = 24,
    n_trials: int = 25,
    beam_width: int = 16,
    seed: int = 20111114,
) -> list[KSweepRow]:
    """Measure rate and decoder work as a function of k at one SNR."""
    rows = []
    for k in k_values:
        if payload_bits % k != 0:
            raise ValueError(
                f"payload_bits={payload_bits} must be divisible by every k (got k={k})"
            )
        config = SpinalRunConfig(
            payload_bits=payload_bits,
            params=SpinalParams(k=int(k), c=10),
            beam_width=beam_width,
            n_trials=n_trials,
            seed=seed,
        )
        framer = config.build_framer()
        encoder = config.build_encoder()
        session = RatelessSession(
            encoder,
            decoder_factory=config.decoder_factory(),
            channel=AWGNChannel(snr_db, adc_bits=config.adc_bits),
            framer=framer,
            termination=config.termination,
            max_symbols=config.symbol_budget(ideal_rate=max(float(k), 1.0)),
            search=config.search,
        )
        total_rate = 0.0
        total_candidates = 0.0
        for trial in range(n_trials):
            rng = spawn_rng(seed, "k-sweep", k, trial)
            payload = random_message_bits(payload_bits, rng)
            result = session.run(payload, rng)
            total_rate += result.rate
            total_candidates += result.candidates_explored
        rows.append(
            KSweepRow(
                k=int(k),
                snr_db=snr_db,
                mean_rate=total_rate / n_trials,
                mean_candidates_per_message=total_candidates / n_trials,
                max_rate_bound=float(k) * 2,  # tail-first puncturing can double it
            )
        )
    return rows


def k_sweep_table(rows: list[KSweepRow]) -> str:
    return render_table(
        ["k", "SNR(dB)", "mean rate", "tree nodes / message"],
        [
            (row.k, row.snr_db, row.mean_rate, row.mean_candidates_per_message)
            for row in rows
        ],
        float_format="{:.2f}",
    )
