"""Experiment E6: the role of the segment size k.

Section 3.1: "the computational complexity of the decoder grows
exponentially with k, while the maximum rate achievable by the code grows
linearly with k".  This experiment sweeps k at fixed SNR and message length
and reports both the achieved rate and the decoder work per delivered
message, making that trade-off measurable.

Registered as ``k-sweep``; ``k_sweep_experiment`` is a thin wrapper over
the registry engine that adapts cells to the historical rows.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.channels.awgn import AWGNChannel
from repro.experiments.registry import Experiment, default_aggregate, register, run_experiment
from repro.experiments.runner import (
    run_one_spinal_trial,
    spinal_config_from_params,
    spinal_fixed,
)
from repro.experiments.spec import Axis, Column, PlotSpec, SweepSpec
from repro.utils.results import mean, render_table

__all__ = ["KSweepRow", "k_sweep_experiment", "k_sweep_table", "K_SWEEP_EXPERIMENT"]


def k_sweep_point(params, rng) -> dict:
    """Registry kernel: one spinal trial at this cell's segment size k.

    The symbol budget assumes an ideal rate of ``k`` bits/symbol (the
    un-punctured ceiling), exactly like the historical experiment.
    """
    config = spinal_config_from_params(params)
    channel = AWGNChannel(float(params["snr_db"]), adc_bits=config.adc_bits)
    budget = config.symbol_budget(ideal_rate=max(float(params["k"]), 1.0))
    return run_one_spinal_trial(config, channel, budget, rng)


def k_sweep_seed_labels(params, trial) -> tuple:
    """The historical per-trial stream labels of the k sweep."""
    return ("k-sweep", int(params["k"]), trial)


def k_sweep_aggregate(params, trials) -> dict:
    out = default_aggregate(params, trials)
    out["rate"] = mean([float(t["rate"]) for t in trials])
    out["candidates"] = mean([float(t["candidates"]) for t in trials])
    out["max_rate_bound"] = float(params["k"]) * 2  # tail-first puncturing can double it
    return out


def _k_sweep_fixed() -> dict:
    fixed = spinal_fixed(snr_db=15.0)
    fixed.pop("k")
    return fixed


K_SWEEP_EXPERIMENT = register(
    Experiment(
        name="k-sweep",
        description="E6: rate and decoder work vs segment size k at fixed SNR",
        spec=SweepSpec(
            axes=(Axis("k", (2, 3, 4, 6, 8), "int"),),
            fixed=_k_sweep_fixed(),
        ),
        run_point=k_sweep_point,
        columns=(
            Column("k", "k"),
            Column("SNR(dB)", "snr_db"),
            Column("mean rate", "rate"),
            Column("tree nodes / message", "candidates"),
            Column("max rate bound", "max_rate_bound"),
        ),
        n_trials=25,
        aggregate=k_sweep_aggregate,
        seed_labels=k_sweep_seed_labels,
        smoke={
            "k": (2, 4),
            "payload_bits": 16,
            "beam_width": 8,
            "c": 6,
            "n_trials": 2,
        },
        plot=PlotSpec(x="k", y="rate", x_label="segment size k", y_label="bits/symbol"),
    )
)


@dataclass(frozen=True)
class KSweepRow:
    """Aggregate outcome for one segment size."""

    k: int
    snr_db: float
    mean_rate: float
    mean_candidates_per_message: float
    max_rate_bound: float


def k_sweep_experiment(
    k_values=(2, 3, 4, 6, 8),
    snr_db: float = 15.0,
    payload_bits: int = 24,
    n_trials: int = 25,
    beam_width: int = 16,
    seed: int = 20111114,
) -> list[KSweepRow]:
    """Measure rate and decoder work as a function of k at one SNR."""
    for k in k_values:
        if payload_bits % int(k) != 0:
            raise ValueError(
                f"payload_bits={payload_bits} must be divisible by every k (got k={k})"
            )
    outcome = run_experiment(
        K_SWEEP_EXPERIMENT,
        overrides={
            "k": tuple(int(k) for k in k_values),
            "snr_db": float(snr_db),
            "payload_bits": int(payload_bits),
            "beam_width": int(beam_width),
        },
        n_trials=n_trials,
        seed=seed,
    )
    return [
        KSweepRow(
            k=int(params["k"]),
            snr_db=float(snr_db),
            mean_rate=cell["aggregate"]["rate"],
            mean_candidates_per_message=cell["aggregate"]["candidates"],
            max_rate_bound=cell["aggregate"]["max_rate_bound"],
        )
        for _key, params, cell in outcome.successful_cells()
    ]


def k_sweep_table(rows: list[KSweepRow]) -> str:
    return render_table(
        ["k", "SNR(dB)", "mean rate", "tree nodes / message"],
        [
            (row.k, row.snr_db, row.mean_rate, row.mean_candidates_per_message)
            for row in rows
        ],
        float_format="{:.2f}",
    )
