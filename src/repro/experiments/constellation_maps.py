"""Experiment E11: constellation mapping ablation (Section 6, future work).

The paper uses the linear map of Eq. (3) and conjectures that "a Gaussian
mapping is likely to improve performance" (part of the Theorem-1 gap is
attributed to the uniform rather than Gaussian input distribution).  This
ablation measures the achieved rate of the three implemented maps — the
paper's sign/magnitude linear map, the offset-linear (uniform PAM) map, and
the truncated-Gaussian map — across SNR.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.runner import SpinalRunConfig, run_spinal_point
from repro.theory.capacity import awgn_capacity_db
from repro.utils.results import render_table

__all__ = [
    "ConstellationRow",
    "constellation_experiment",
    "constellation_table",
]

DEFAULT_MAPS = ("linear", "offset-linear", "truncated-gaussian")


@dataclass(frozen=True)
class ConstellationRow:
    """One (constellation, SNR) measurement."""

    constellation: str
    snr_db: float
    mean_rate: float
    fraction_of_capacity: float


def constellation_experiment(
    constellation_kinds=DEFAULT_MAPS,
    snr_values_db=(0.0, 10.0, 20.0),
    base_config: SpinalRunConfig | None = None,
) -> list[ConstellationRow]:
    """Measure every implemented mapping function at several SNRs."""
    if base_config is None:
        base_config = SpinalRunConfig(n_trials=25)
    rows = []
    for kind in constellation_kinds:
        config = base_config.with_(params=base_config.params.with_(constellation=kind))
        for snr_db in snr_values_db:
            measurement = run_spinal_point(config, float(snr_db))
            capacity = awgn_capacity_db(float(snr_db))
            rows.append(
                ConstellationRow(
                    constellation=kind,
                    snr_db=float(snr_db),
                    mean_rate=measurement.mean_rate,
                    fraction_of_capacity=measurement.mean_rate / capacity,
                )
            )
    return rows


def constellation_table(rows: list[ConstellationRow]) -> str:
    """Pivot into one column per mapping function."""
    kinds = list(dict.fromkeys(row.constellation for row in rows))
    snrs = sorted({row.snr_db for row in rows})
    lookup = {(row.constellation, row.snr_db): row.mean_rate for row in rows}
    headers = ["SNR(dB)", "capacity"] + list(kinds)
    table_rows = []
    for snr_db in snrs:
        row = [snr_db, awgn_capacity_db(snr_db)]
        row.extend(lookup.get((kind, snr_db), float("nan")) for kind in kinds)
        table_rows.append(row)
    return render_table(headers, table_rows)
