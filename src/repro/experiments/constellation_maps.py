"""Experiment E11: constellation mapping ablation (Section 6, future work).

The paper uses the linear map of Eq. (3) and conjectures that "a Gaussian
mapping is likely to improve performance" (part of the Theorem-1 gap is
attributed to the uniform rather than Gaussian input distribution).  This
ablation measures the achieved rate of the three implemented maps — the
paper's sign/magnitude linear map, the offset-linear (uniform PAM) map, and
the truncated-Gaussian map — across SNR.

Registered as ``constellation-maps``; ``constellation_experiment`` is a
thin wrapper over the registry engine that adapts cells to the historical
rows.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.registry import Experiment, register, run_experiment
from repro.experiments.runner import (
    SpinalRunConfig,
    awgn_seed_labels,
    awgn_trial,
    rate_cell_aggregate,
    require_engine_compatible,
    spinal_fixed,
    spinal_overrides,
)
from repro.experiments.spec import Axis, Column, PlotSpec, SweepSpec
from repro.theory.capacity import awgn_capacity_db
from repro.utils.results import render_table

__all__ = [
    "ConstellationRow",
    "constellation_experiment",
    "constellation_table",
    "CONSTELLATION_EXPERIMENT",
]

DEFAULT_MAPS = ("linear", "offset-linear", "truncated-gaussian")


def constellation_point(params, rng) -> dict:
    """Registry kernel: one spinal trial under this cell's mapping function."""
    return awgn_trial(params, rng)


def _constellation_fixed() -> dict:
    fixed = spinal_fixed()
    fixed.pop("constellation")
    return fixed


CONSTELLATION_EXPERIMENT = register(
    Experiment(
        name="constellation-maps",
        description="E11: linear vs offset-linear vs truncated-Gaussian symbol maps",
        spec=SweepSpec(
            axes=(
                Axis("constellation", DEFAULT_MAPS, "str"),
                Axis("snr_db", (0.0, 10.0, 20.0), "float"),
            ),
            fixed=_constellation_fixed(),
        ),
        run_point=constellation_point,
        columns=(
            Column("constellation", "constellation"),
            Column("SNR(dB)", "snr_db"),
            Column("mean rate", "rate"),
            Column("fraction of capacity", "fraction_of_capacity"),
        ),
        n_trials=25,
        aggregate=rate_cell_aggregate,
        seed_labels=awgn_seed_labels,
        smoke={
            "constellation": ("linear",),
            "snr_db": (10.0,),
            "payload_bits": 16,
            "k": 4,
            "c": 6,
            "beam_width": 8,
            "n_trials": 2,
        },
        plot=PlotSpec(
            x="snr_db",
            y="rate",
            series="constellation",
            x_label="SNR (dB)",
            y_label="bits/symbol",
        ),
    )
)


@dataclass(frozen=True)
class ConstellationRow:
    """One (constellation, SNR) measurement."""

    constellation: str
    snr_db: float
    mean_rate: float
    fraction_of_capacity: float


def constellation_experiment(
    constellation_kinds=DEFAULT_MAPS,
    snr_values_db=(0.0, 10.0, 20.0),
    base_config: SpinalRunConfig | None = None,
) -> list[ConstellationRow]:
    """Measure every implemented mapping function at several SNRs."""
    if base_config is None:
        base_config = SpinalRunConfig(n_trials=25)
    require_engine_compatible(base_config)
    overrides = spinal_overrides(base_config)
    overrides.pop("constellation")
    overrides["constellation"] = tuple(str(c) for c in constellation_kinds)
    overrides["snr_db"] = tuple(float(s) for s in snr_values_db)
    outcome = run_experiment(
        CONSTELLATION_EXPERIMENT,
        overrides=overrides,
        n_trials=base_config.n_trials,
        seed=base_config.seed,
        n_workers=base_config.n_workers,
    )
    return [
        ConstellationRow(
            constellation=str(params["constellation"]),
            snr_db=float(params["snr_db"]),
            mean_rate=cell["aggregate"]["rate"],
            fraction_of_capacity=cell["aggregate"]["fraction_of_capacity"],
        )
        for _key, params, cell in outcome.successful_cells()
    ]


def constellation_table(rows: list[ConstellationRow]) -> str:
    """Pivot into one column per mapping function."""
    kinds = list(dict.fromkeys(row.constellation for row in rows))
    snrs = sorted({row.snr_db for row in rows})
    lookup = {(row.constellation, row.snr_db): row.mean_rate for row in rows}
    headers = ["SNR(dB)", "capacity"] + list(kinds)
    table_rows = []
    for snr_db in snrs:
        row = [snr_db, awgn_capacity_db(snr_db)]
        row.extend(lookup.get((kind, snr_db), float("nan")) for kind in kinds)
        table_rows.append(row)
    return render_table(headers, table_rows)
