"""Experiment E9: behaviour across message lengths.

Section 5: "we have similar results for other block lengths, but the SNR
thresholds differ with length" (referring to the SNR below which the
rateless spinal code beats the fixed-block finite-length bound).  This
experiment repeats the rate-vs-SNR measurement for several message lengths
and reports each length's rate together with the corresponding
finite-blocklength bound.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.runner import SpinalRunConfig, run_spinal_point
from repro.theory.capacity import awgn_capacity_db
from repro.theory.finite_blocklength import ppv_fixed_block_bound_db
from repro.utils.results import render_table

__all__ = ["BlocklengthRow", "blocklength_experiment", "blocklength_table"]

DEFAULT_MESSAGE_LENGTHS = (16, 24, 48, 96)


@dataclass(frozen=True)
class BlocklengthRow:
    """One (message length, SNR) measurement."""

    payload_bits: int
    snr_db: float
    mean_rate: float
    capacity: float
    fixed_block_bound: float

    @property
    def beats_fixed_block_bound(self) -> bool:
        return self.mean_rate > self.fixed_block_bound


def blocklength_experiment(
    payload_lengths=DEFAULT_MESSAGE_LENGTHS,
    snr_values_db=(0.0, 10.0, 20.0),
    base_config: SpinalRunConfig | None = None,
) -> list[BlocklengthRow]:
    """Measure the spinal rate for several message lengths."""
    if base_config is None:
        base_config = SpinalRunConfig(n_trials=25)
    rows = []
    for payload_bits in payload_lengths:
        config = base_config.with_(payload_bits=int(payload_bits))
        for snr_db in snr_values_db:
            measurement = run_spinal_point(config, float(snr_db))
            rows.append(
                BlocklengthRow(
                    payload_bits=int(payload_bits),
                    snr_db=float(snr_db),
                    mean_rate=measurement.mean_rate,
                    capacity=awgn_capacity_db(float(snr_db)),
                    fixed_block_bound=ppv_fixed_block_bound_db(
                        float(snr_db), block_length=int(payload_bits)
                    ),
                )
            )
    return rows


def blocklength_table(rows: list[BlocklengthRow]) -> str:
    return render_table(
        ["m (bits)", "SNR(dB)", "mean rate", "capacity", "PPV bound(m)", "beats bound"],
        [
            (
                row.payload_bits,
                row.snr_db,
                row.mean_rate,
                row.capacity,
                row.fixed_block_bound,
                row.beats_fixed_block_bound,
            )
            for row in rows
        ],
    )
