"""Experiment E9: behaviour across message lengths.

Section 5: "we have similar results for other block lengths, but the SNR
thresholds differ with length" (referring to the SNR below which the
rateless spinal code beats the fixed-block finite-length bound).  This
experiment repeats the rate-vs-SNR measurement for several message lengths
and reports each length's rate together with the corresponding
finite-blocklength bound.

Registered as ``blocklength``; ``blocklength_experiment`` is a thin wrapper
over the registry engine that adapts cells to the historical rows.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.registry import Experiment, register, run_experiment
from repro.experiments.runner import (
    SpinalRunConfig,
    awgn_seed_labels,
    awgn_trial,
    rate_cell_aggregate,
    require_engine_compatible,
    spinal_fixed,
    spinal_overrides,
)
from repro.experiments.spec import Axis, Column, PlotSpec, SweepSpec
from repro.theory.finite_blocklength import ppv_fixed_block_bound_db
from repro.utils.results import render_table

__all__ = [
    "BlocklengthRow",
    "blocklength_experiment",
    "blocklength_table",
    "BLOCKLENGTH_EXPERIMENT",
]

DEFAULT_MESSAGE_LENGTHS = (16, 24, 48, 96)


def blocklength_point(params, rng) -> dict:
    """Registry kernel: one spinal trial plus this length's PPV bound."""
    metrics = awgn_trial(params, rng)
    metrics["ppv_bound"] = ppv_fixed_block_bound_db(
        float(params["snr_db"]), block_length=int(params["payload_bits"])
    )
    return metrics


def blocklength_aggregate(params, trials) -> dict:
    out = rate_cell_aggregate(params, trials)
    out["beats_bound"] = out["rate"] > out["ppv_bound"]
    return out


def _blocklength_fixed() -> dict:
    fixed = spinal_fixed()
    fixed.pop("payload_bits")
    return fixed


BLOCKLENGTH_EXPERIMENT = register(
    Experiment(
        name="blocklength",
        description="E9: spinal rate vs message length against the PPV fixed-block bound",
        spec=SweepSpec(
            axes=(
                Axis("payload_bits", DEFAULT_MESSAGE_LENGTHS, "int"),
                Axis("snr_db", (0.0, 10.0, 20.0), "float"),
            ),
            fixed=_blocklength_fixed(),
        ),
        run_point=blocklength_point,
        columns=(
            Column("m (bits)", "payload_bits"),
            Column("SNR(dB)", "snr_db"),
            Column("mean rate", "rate"),
            Column("capacity", "capacity"),
            Column("PPV bound(m)", "ppv_bound"),
            Column("beats bound", "beats_bound"),
        ),
        n_trials=25,
        aggregate=blocklength_aggregate,
        seed_labels=awgn_seed_labels,
        smoke={
            "payload_bits": (16,),
            "snr_db": (10.0,),
            "k": 4,
            "c": 6,
            "beam_width": 8,
            "n_trials": 2,
        },
        plot=PlotSpec(
            x="snr_db",
            y="rate",
            series="payload_bits",
            x_label="SNR (dB)",
            y_label="bits/symbol",
        ),
    )
)


@dataclass(frozen=True)
class BlocklengthRow:
    """One (message length, SNR) measurement."""

    payload_bits: int
    snr_db: float
    mean_rate: float
    capacity: float
    fixed_block_bound: float

    @property
    def beats_fixed_block_bound(self) -> bool:
        return self.mean_rate > self.fixed_block_bound


def blocklength_experiment(
    payload_lengths=DEFAULT_MESSAGE_LENGTHS,
    snr_values_db=(0.0, 10.0, 20.0),
    base_config: SpinalRunConfig | None = None,
) -> list[BlocklengthRow]:
    """Measure the spinal rate for several message lengths."""
    if base_config is None:
        base_config = SpinalRunConfig(n_trials=25)
    require_engine_compatible(base_config)
    overrides = spinal_overrides(base_config)
    overrides.pop("payload_bits")
    overrides["payload_bits"] = tuple(int(m) for m in payload_lengths)
    overrides["snr_db"] = tuple(float(s) for s in snr_values_db)
    outcome = run_experiment(
        BLOCKLENGTH_EXPERIMENT,
        overrides=overrides,
        n_trials=base_config.n_trials,
        seed=base_config.seed,
        n_workers=base_config.n_workers,
    )
    return [
        BlocklengthRow(
            payload_bits=int(params["payload_bits"]),
            snr_db=float(params["snr_db"]),
            mean_rate=cell["aggregate"]["rate"],
            capacity=cell["aggregate"]["capacity"],
            fixed_block_bound=cell["aggregate"]["ppv_bound"],
        )
        for _key, params, cell in outcome.successful_cells()
    ]


def blocklength_table(rows: list[BlocklengthRow]) -> str:
    return render_table(
        ["m (bits)", "SNR(dB)", "mean rate", "capacity", "PPV bound(m)", "beats bound"],
        [
            (
                row.payload_bits,
                row.snr_db,
                row.mean_rate,
                row.capacity,
                row.fixed_block_bound,
                row.beats_fixed_block_bound,
            )
            for row in rows
        ],
    )
