"""Experiment harness: everything needed to regenerate the paper's results.

All experiments are registered in a single declarative registry
(:mod:`repro.experiments.registry`): each module defines an
:class:`~repro.experiments.registry.Experiment` — a typed
:class:`~repro.experiments.spec.SweepSpec` plus a pure
``run_point(params, rng)`` kernel — and one engine provides grid expansion,
process fan-out of points and trials (worker-count-invariant seeding),
persistence to a content-hash-keyed JSON store with cell-level resume, and
declarative table/plot rendering.  ``repro list`` enumerates them,
``repro run <name>`` executes them, ``repro report <run.json>`` re-renders
persisted runs.

Module index (legacy wrapper functions kept for scripting):

* :mod:`repro.experiments.runner` — shared Monte-Carlo machinery plus the
  ``rate``/``bsc`` experiments;
* :mod:`repro.experiments.figure2` — ``figure2`` (rate vs SNR with bounds)
  and the E2 crossover claim;
* :mod:`repro.experiments.theorems` — ``theorem1-gap`` / ``theorem2-bsc``;
* :mod:`repro.experiments.scale_down` — ``scale-down`` (rate vs beam width);
* :mod:`repro.experiments.k_sweep` — ``k-sweep`` (segment size k);
* :mod:`repro.experiments.puncturing` — ``puncturing`` (rates above k);
* :mod:`repro.experiments.distance` — ``distance`` (nonlinearity profile);
* :mod:`repro.experiments.blocklength` — ``blocklength`` (message lengths);
* :mod:`repro.experiments.quantization` — ``quantization`` (ADC precision);
* :mod:`repro.experiments.constellation_maps` — ``constellation-maps``;
* :mod:`repro.experiments.ldpc_ablation` — ``ldpc-ablation`` /
  ``ldpc-rate``;
* :mod:`repro.experiments.feedback` — ``feedback`` (feedback overhead);
* :mod:`repro.experiments.fixed_vs_rateless` — ``fixed-vs-rateless``;
* :mod:`repro.experiments.transport_sweep` — ``transport`` (measured
  ARQ/relay goodput).

The benchmark modules under ``benchmarks/`` are thin wrappers that call into
this package and print the resulting tables.
"""

from repro.experiments.registry import (
    Experiment,
    RunOutcome,
    all_experiments,
    get,
    load_all,
    names,
    register,
    run_experiment,
)
from repro.experiments.runner import (
    SpinalRunConfig,
    make_puncturing,
    run_spinal_bsc_curve,
    run_spinal_bsc_point,
    run_spinal_curve,
    run_spinal_point,
)
from repro.experiments.spec import Axis, Column, PlotSpec, SweepSpec
from repro.experiments.transport_sweep import (
    TransportSweepConfig,
    TransportSweepRow,
    run_transport_sweep,
    transport_sweep_table,
)

__all__ = [
    "Experiment",
    "RunOutcome",
    "Axis",
    "Column",
    "PlotSpec",
    "SweepSpec",
    "register",
    "get",
    "names",
    "all_experiments",
    "load_all",
    "run_experiment",
    "SpinalRunConfig",
    "make_puncturing",
    "run_spinal_point",
    "run_spinal_curve",
    "run_spinal_bsc_point",
    "run_spinal_bsc_curve",
    "TransportSweepConfig",
    "TransportSweepRow",
    "run_transport_sweep",
    "transport_sweep_table",
]
