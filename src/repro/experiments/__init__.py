"""Experiment harness: everything needed to regenerate the paper's results.

Each module corresponds to one experiment of the index in DESIGN.md:

* :mod:`repro.experiments.runner` — shared Monte-Carlo machinery for
  measuring spinal-code rates over AWGN and BSC channels;
* :mod:`repro.experiments.figure2` — Figure 2 (rate vs SNR: spinal, Shannon
  bound, finite-blocklength bound, eight LDPC configurations) and the E2
  crossover claim;
* :mod:`repro.experiments.theorems` — E3/E4 (Theorem 1 gap, Theorem 2 BSC);
* :mod:`repro.experiments.scale_down` — E5 (rate vs beam width B);
* :mod:`repro.experiments.k_sweep` — E6 (segment size k);
* :mod:`repro.experiments.puncturing` — E7 (rates above k bits/symbol);
* :mod:`repro.experiments.distance` — E8 (nonlinearity / distance profile);
* :mod:`repro.experiments.blocklength` — E9 (other message lengths);
* :mod:`repro.experiments.quantization` — E10 (ADC precision);
* :mod:`repro.experiments.constellation_maps` — E11 (linear vs Gaussian map);
* :mod:`repro.experiments.ldpc_ablation` — E12 (BP iterations);
* :mod:`repro.experiments.feedback` — E13 (feedback overhead);
* :mod:`repro.experiments.transport_sweep` — E15 (measured ARQ/relay
  transport goodput: protocol x window x feedback RTT x hop count);

The benchmark modules under ``benchmarks/`` are thin wrappers that call into
this package and print the resulting tables.
"""

from repro.experiments.runner import (
    SpinalRunConfig,
    make_puncturing,
    run_spinal_bsc_curve,
    run_spinal_bsc_point,
    run_spinal_curve,
    run_spinal_point,
)
from repro.experiments.transport_sweep import (
    TransportSweepConfig,
    TransportSweepRow,
    run_transport_sweep,
    transport_sweep_table,
)

__all__ = [
    "SpinalRunConfig",
    "make_puncturing",
    "run_spinal_point",
    "run_spinal_curve",
    "run_spinal_bsc_point",
    "run_spinal_bsc_curve",
    "TransportSweepConfig",
    "TransportSweepRow",
    "run_transport_sweep",
    "transport_sweep_table",
]
