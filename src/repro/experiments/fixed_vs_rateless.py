"""Experiment E15: how much of the spinal gain is the *rateless* operation?

Section 3 notes that spinal codes can also be run at fixed rates.  This
ablation pins that down: at each SNR it compares

* the rateless spinal session (decode as soon as possible, the paper's
  Figure 2 operation), against
* the best fixed-rate spinal configuration chosen *with hindsight* for that
  SNR (the best ``k / n_passes`` whose frame error rate keeps its achieved
  rate highest).

The gap between the two is the value of ratelessness itself (no
configuration search, no mis-selection, fine-grained stopping).

Registered as ``fixed-vs-rateless``: the per-trial kernel measures the
rateless session; the cell aggregate performs the hindsight fixed-rate
search (its streams use the historical ``("fixed-spinal", snr, passes)``
labels).  ``fixed_vs_rateless_experiment`` is a thin wrapper that adapts
cells to the historical rows.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.fixed_rate_spinal import FixedRateSpinalSystem
from repro.experiments.registry import Experiment, register, run_experiment
from repro.experiments.runner import (
    SpinalRunConfig,
    awgn_seed_labels,
    awgn_trial,
    rate_cell_aggregate,
    require_engine_compatible,
    spinal_config_from_params,
    spinal_fixed,
    spinal_overrides,
)
from repro.experiments.spec import Axis, Column, PlotSpec, SweepSpec
from repro.utils.results import render_table
from repro.utils.rng import spawn_rng

__all__ = [
    "FixedVsRatelessRow",
    "fixed_vs_rateless_experiment",
    "fixed_vs_rateless_table",
    "FIXED_VS_RATELESS_EXPERIMENT",
]

DEFAULT_PASS_CHOICES = (1, 2, 3, 4, 6, 8, 12)


def fixed_vs_rateless_point(params, rng) -> dict:
    """Registry kernel: one rateless spinal trial at this cell's SNR."""
    return awgn_trial(params, rng)


def fixed_vs_rateless_aggregate(params, trials) -> dict:
    """Mean rateless rate plus the hindsight-best fixed-rate configuration.

    The fixed-rate search draws from ``fixed_search_seed`` when set (the
    wrapper's historical independent ``seed`` argument), falling back to
    the run's base seed.
    """
    out = rate_cell_aggregate(params, trials)
    config = spinal_config_from_params(params)
    snr_db = float(params["snr_db"])
    search_seed = params["fixed_search_seed"]
    if search_seed is None:
        search_seed = params["seed"]
    best_rate = 0.0
    best_passes = 0
    for n_passes in params["pass_choices"]:
        system = FixedRateSpinalSystem(
            message_bits=config.payload_bits,
            n_passes=int(n_passes),
            params=config.params,
            beam_width=config.beam_width,
            adc_bits=config.adc_bits,
        )
        rng = spawn_rng(int(search_seed), "fixed-spinal", snr_db, int(n_passes))
        result = system.measure(snr_db, int(params["n_fixed_frames"]), rng)
        if result.achieved_rate > best_rate:
            best_rate = result.achieved_rate
            best_passes = int(n_passes)
    out["best_fixed_rate"] = best_rate
    out["best_fixed_passes"] = best_passes
    out["rateless_gain"] = out["rate"] - best_rate
    return out


FIXED_VS_RATELESS_EXPERIMENT = register(
    Experiment(
        name="fixed-vs-rateless",
        description="Rateless spinal vs the hindsight-best fixed-rate spinal per SNR",
        spec=SweepSpec(
            axes=(Axis("snr_db", (0.0, 5.0, 10.0, 15.0, 20.0), "float"),),
            fixed={
                **spinal_fixed(),
                "pass_choices": DEFAULT_PASS_CHOICES,
                "n_fixed_frames": 25,
                "fixed_search_seed": None,
            },
        ),
        run_point=fixed_vs_rateless_point,
        columns=(
            Column("SNR(dB)", "snr_db"),
            Column("capacity", "capacity"),
            Column("rateless", "rate"),
            Column("best fixed spinal", "best_fixed_rate"),
            Column("passes", "best_fixed_passes"),
            Column("rateless gain", "rateless_gain"),
        ),
        n_trials=25,
        aggregate=fixed_vs_rateless_aggregate,
        seed_labels=awgn_seed_labels,
        smoke={
            "snr_db": (12.0,),
            "pass_choices": (1, 2),
            "n_fixed_frames": 2,
            "payload_bits": 16,
            "k": 4,
            "c": 6,
            "beam_width": 8,
            "n_trials": 2,
        },
        plot=PlotSpec(
            x="snr_db", y="rateless_gain", x_label="SNR (dB)", y_label="bits/symbol"
        ),
    )
)


@dataclass(frozen=True)
class FixedVsRatelessRow:
    """One SNR point of the rateless-vs-fixed-rate-spinal comparison."""

    snr_db: float
    capacity: float
    rateless_rate: float
    best_fixed_rate: float
    best_fixed_passes: int

    @property
    def rateless_gain(self) -> float:
        """Rateless rate minus the best hindsight-chosen fixed spinal rate."""
        return self.rateless_rate - self.best_fixed_rate


def fixed_vs_rateless_experiment(
    snr_values_db=(0.0, 5.0, 10.0, 15.0, 20.0),
    config: SpinalRunConfig | None = None,
    pass_choices=DEFAULT_PASS_CHOICES,
    n_fixed_frames: int = 25,
    seed: int = 20111114,
) -> list[FixedVsRatelessRow]:
    """Compare rateless operation against hindsight-optimal fixed-rate spinal.

    As historically, the rateless trials draw from ``config.seed`` and the
    fixed-rate search from the independent ``seed`` argument.
    """
    if config is None:
        config = SpinalRunConfig(n_trials=25)
    require_engine_compatible(config)
    outcome = run_experiment(
        FIXED_VS_RATELESS_EXPERIMENT,
        overrides={
            **spinal_overrides(config),
            "snr_db": tuple(float(s) for s in snr_values_db),
            "pass_choices": tuple(int(p) for p in pass_choices),
            "n_fixed_frames": int(n_fixed_frames),
            "fixed_search_seed": int(seed),
        },
        n_trials=config.n_trials,
        seed=config.seed,
        n_workers=config.n_workers,
    )
    return [
        FixedVsRatelessRow(
            snr_db=float(params["snr_db"]),
            capacity=cell["aggregate"]["capacity"],
            rateless_rate=cell["aggregate"]["rate"],
            best_fixed_rate=cell["aggregate"]["best_fixed_rate"],
            best_fixed_passes=int(cell["aggregate"]["best_fixed_passes"]),
        )
        for _key, params, cell in outcome.successful_cells()
    ]


def fixed_vs_rateless_table(rows: list[FixedVsRatelessRow]) -> str:
    return render_table(
        ["SNR(dB)", "capacity", "rateless", "best fixed spinal", "passes", "rateless gain"],
        [
            (
                row.snr_db,
                row.capacity,
                row.rateless_rate,
                row.best_fixed_rate,
                row.best_fixed_passes,
                row.rateless_gain,
            )
            for row in rows
        ],
    )
