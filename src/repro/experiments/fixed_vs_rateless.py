"""Experiment E15: how much of the spinal gain is the *rateless* operation?

Section 3 notes that spinal codes can also be run at fixed rates.  This
ablation pins that down: at each SNR it compares

* the rateless spinal session (decode as soon as possible, the paper's
  Figure 2 operation), against
* the best fixed-rate spinal configuration chosen *with hindsight* for that
  SNR (the best ``k / n_passes`` whose frame error rate keeps its achieved
  rate highest), against
* the best fixed-rate LDPC configuration at that SNR (optional, slower).

The gap between the first two is the value of ratelessness itself (no
configuration search, no mis-selection, fine-grained stopping); the gap to
the third is the value of the spinal construction at short block lengths.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.fixed_rate_spinal import FixedRateSpinalSystem
from repro.experiments.runner import SpinalRunConfig, run_spinal_point
from repro.theory.capacity import awgn_capacity_db
from repro.utils.results import render_table
from repro.utils.rng import spawn_rng

__all__ = ["FixedVsRatelessRow", "fixed_vs_rateless_experiment", "fixed_vs_rateless_table"]

DEFAULT_PASS_CHOICES = (1, 2, 3, 4, 6, 8, 12)


@dataclass(frozen=True)
class FixedVsRatelessRow:
    """One SNR point of the rateless-vs-fixed-rate-spinal comparison."""

    snr_db: float
    capacity: float
    rateless_rate: float
    best_fixed_rate: float
    best_fixed_passes: int

    @property
    def rateless_gain(self) -> float:
        """Rateless rate minus the best hindsight-chosen fixed spinal rate."""
        return self.rateless_rate - self.best_fixed_rate


def fixed_vs_rateless_experiment(
    snr_values_db=(0.0, 5.0, 10.0, 15.0, 20.0),
    config: SpinalRunConfig | None = None,
    pass_choices=DEFAULT_PASS_CHOICES,
    n_fixed_frames: int = 25,
    seed: int = 20111114,
) -> list[FixedVsRatelessRow]:
    """Compare rateless operation against hindsight-optimal fixed-rate spinal."""
    if config is None:
        config = SpinalRunConfig(n_trials=25)
    rows = []
    for snr_db in snr_values_db:
        rateless = run_spinal_point(config, float(snr_db))

        best_rate = 0.0
        best_passes = 0
        for n_passes in pass_choices:
            system = FixedRateSpinalSystem(
                message_bits=config.payload_bits,
                n_passes=int(n_passes),
                params=config.params,
                beam_width=config.beam_width,
                adc_bits=config.adc_bits,
            )
            rng = spawn_rng(seed, "fixed-spinal", snr_db, n_passes)
            result = system.measure(float(snr_db), n_fixed_frames, rng)
            if result.achieved_rate > best_rate:
                best_rate = result.achieved_rate
                best_passes = int(n_passes)
        rows.append(
            FixedVsRatelessRow(
                snr_db=float(snr_db),
                capacity=awgn_capacity_db(float(snr_db)),
                rateless_rate=rateless.mean_rate,
                best_fixed_rate=best_rate,
                best_fixed_passes=best_passes,
            )
        )
    return rows


def fixed_vs_rateless_table(rows: list[FixedVsRatelessRow]) -> str:
    return render_table(
        ["SNR(dB)", "capacity", "rateless", "best fixed spinal", "passes", "rateless gain"],
        [
            (
                row.snr_db,
                row.capacity,
                row.rateless_rate,
                row.best_fixed_rate,
                row.best_fixed_passes,
                row.rateless_gain,
            )
            for row in rows
        ],
    )
