"""Experiment E10: sensitivity to the receiver ADC resolution.

The paper's Figure 2 experiment quantises each received dimension to 14 bits
"to simulate quantization of an ADC".  This ablation sweeps the ADC depth to
show that 14 bits is effectively transparent and to find how few bits the
decoder can actually live with — a practically relevant question for a
receiver that feeds raw I/Q samples to the decoder.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.runner import SpinalRunConfig, run_spinal_point
from repro.theory.capacity import awgn_capacity_db
from repro.utils.results import render_table

__all__ = ["QuantizationRow", "quantization_experiment", "quantization_table"]

DEFAULT_ADC_BITS = (4, 6, 8, 10, 14, None)


@dataclass(frozen=True)
class QuantizationRow:
    """One (ADC depth, SNR) measurement; ``adc_bits=None`` means no quantiser."""

    adc_bits: int | None
    snr_db: float
    mean_rate: float
    fraction_of_capacity: float


def quantization_experiment(
    adc_bit_depths=DEFAULT_ADC_BITS,
    snr_values_db=(10.0, 25.0),
    base_config: SpinalRunConfig | None = None,
) -> list[QuantizationRow]:
    """Measure the spinal rate as the ADC depth varies."""
    if base_config is None:
        base_config = SpinalRunConfig(n_trials=25)
    rows = []
    for adc_bits in adc_bit_depths:
        config = base_config.with_(adc_bits=adc_bits)
        for snr_db in snr_values_db:
            measurement = run_spinal_point(config, float(snr_db))
            capacity = awgn_capacity_db(float(snr_db))
            rows.append(
                QuantizationRow(
                    adc_bits=adc_bits,
                    snr_db=float(snr_db),
                    mean_rate=measurement.mean_rate,
                    fraction_of_capacity=measurement.mean_rate / capacity,
                )
            )
    return rows


def quantization_table(rows: list[QuantizationRow]) -> str:
    return render_table(
        ["ADC bits", "SNR(dB)", "mean rate", "fraction of capacity"],
        [
            (
                "inf" if row.adc_bits is None else row.adc_bits,
                row.snr_db,
                row.mean_rate,
                row.fraction_of_capacity,
            )
            for row in rows
        ],
    )
