"""Experiment E10: sensitivity to the receiver ADC resolution.

The paper's Figure 2 experiment quantises each received dimension to 14 bits
"to simulate quantization of an ADC".  This ablation sweeps the ADC depth to
show that 14 bits is effectively transparent and to find how few bits the
decoder can actually live with — a practically relevant question for a
receiver that feeds raw I/Q samples to the decoder.

Registered as ``quantization`` (the ``adc_bits`` axis admits ``none`` for
"no quantiser"); ``quantization_experiment`` is a thin wrapper over the
registry engine that adapts cells to the historical rows.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.registry import Experiment, register, run_experiment
from repro.experiments.runner import (
    SpinalRunConfig,
    awgn_seed_labels,
    awgn_trial,
    rate_cell_aggregate,
    require_engine_compatible,
    spinal_fixed,
    spinal_overrides,
)
from repro.experiments.spec import Axis, Column, PlotSpec, SweepSpec
from repro.utils.results import render_table

__all__ = [
    "QuantizationRow",
    "quantization_experiment",
    "quantization_table",
    "QUANTIZATION_EXPERIMENT",
]

DEFAULT_ADC_BITS = (4, 6, 8, 10, 14, None)


def quantization_point(params, rng) -> dict:
    """Registry kernel: one spinal trial at this cell's ADC depth."""
    return awgn_trial(params, rng)


def _quantization_fixed() -> dict:
    fixed = spinal_fixed()
    fixed.pop("adc_bits")
    return fixed


QUANTIZATION_EXPERIMENT = register(
    Experiment(
        name="quantization",
        description="E10: spinal rate vs receiver ADC depth (none = no quantiser)",
        spec=SweepSpec(
            axes=(
                Axis("adc_bits", DEFAULT_ADC_BITS, "int", optional=True),
                Axis("snr_db", (10.0, 25.0), "float"),
            ),
            fixed=_quantization_fixed(),
        ),
        run_point=quantization_point,
        columns=(
            Column("ADC bits", "adc_bits", none_text="inf"),
            Column("SNR(dB)", "snr_db"),
            Column("mean rate", "rate"),
            Column("fraction of capacity", "fraction_of_capacity"),
        ),
        n_trials=25,
        aggregate=rate_cell_aggregate,
        seed_labels=awgn_seed_labels,
        smoke={
            "adc_bits": (6, None),
            "snr_db": (10.0,),
            "payload_bits": 16,
            "k": 4,
            "c": 6,
            "beam_width": 8,
            "n_trials": 2,
        },
        plot=PlotSpec(
            x="snr_db",
            y="fraction_of_capacity",
            series="adc_bits",
            x_label="SNR (dB)",
            y_label="fraction of capacity",
        ),
    )
)


@dataclass(frozen=True)
class QuantizationRow:
    """One (ADC depth, SNR) measurement; ``adc_bits=None`` means no quantiser."""

    adc_bits: int | None
    snr_db: float
    mean_rate: float
    fraction_of_capacity: float


def quantization_experiment(
    adc_bit_depths=DEFAULT_ADC_BITS,
    snr_values_db=(10.0, 25.0),
    base_config: SpinalRunConfig | None = None,
) -> list[QuantizationRow]:
    """Measure the spinal rate as the ADC depth varies."""
    if base_config is None:
        base_config = SpinalRunConfig(n_trials=25)
    require_engine_compatible(base_config)
    overrides = spinal_overrides(base_config)
    overrides.pop("adc_bits")
    overrides["adc_bits"] = tuple(adc_bit_depths)
    overrides["snr_db"] = tuple(float(s) for s in snr_values_db)
    outcome = run_experiment(
        QUANTIZATION_EXPERIMENT,
        overrides=overrides,
        n_trials=base_config.n_trials,
        seed=base_config.seed,
        n_workers=base_config.n_workers,
    )
    return [
        QuantizationRow(
            adc_bits=params["adc_bits"],
            snr_db=float(params["snr_db"]),
            mean_rate=cell["aggregate"]["rate"],
            fraction_of_capacity=cell["aggregate"]["fraction_of_capacity"],
        )
        for _key, params, cell in outcome.successful_cells()
    ]


def quantization_table(rows: list[QuantizationRow]) -> str:
    return render_table(
        ["ADC bits", "SNR(dB)", "mean rate", "fraction of capacity"],
        [
            (
                "inf" if row.adc_bits is None else row.adc_bits,
                row.snr_db,
                row.mean_rate,
                row.fraction_of_capacity,
            )
            for row in rows
        ],
    )
