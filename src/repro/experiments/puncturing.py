"""Experiment E7: puncturing pushes the rate above k bits/symbol.

Section 3.1: "In our experiments, we actually obtain rates higher than k
bits/symbol using puncturing, where the transmitter does not send each
successive spine value in every pass."  This experiment compares the
available schedules at high SNR and reports how often the achieved rate
exceeds the un-punctured ceiling of ``k``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.runner import SpinalRunConfig, run_spinal_point
from repro.utils.results import render_table

__all__ = ["PuncturingRow", "puncturing_experiment", "puncturing_table"]

DEFAULT_SCHEDULES = ("none", "symbol", "strided", "tail-first")


@dataclass(frozen=True)
class PuncturingRow:
    """One (schedule, SNR) measurement."""

    schedule: str
    snr_db: float
    mean_rate: float
    max_rate: float
    fraction_above_k: float
    k: int

    @property
    def exceeds_k(self) -> bool:
        """Whether any trial beat the un-punctured ceiling of k bits/symbol."""
        return self.max_rate > self.k


def puncturing_experiment(
    snr_values_db=(20.0, 30.0, 40.0),
    schedules=DEFAULT_SCHEDULES,
    base_config: SpinalRunConfig | None = None,
) -> list[PuncturingRow]:
    """Measure every schedule at high SNR."""
    if base_config is None:
        base_config = SpinalRunConfig(n_trials=25)
    rows = []
    k = base_config.params.k
    for schedule in schedules:
        config = base_config.with_(puncturing=schedule)
        for snr_db in snr_values_db:
            measurement = run_spinal_point(config, float(snr_db))
            above = [r for r in measurement.rates if r > k]
            rows.append(
                PuncturingRow(
                    schedule=schedule,
                    snr_db=float(snr_db),
                    mean_rate=measurement.mean_rate,
                    max_rate=max(measurement.rates),
                    fraction_above_k=len(above) / len(measurement.rates),
                    k=k,
                )
            )
    return rows


def puncturing_table(rows: list[PuncturingRow]) -> str:
    return render_table(
        ["schedule", "SNR(dB)", "mean rate", "max rate", "frac > k", "k"],
        [
            (
                row.schedule,
                row.snr_db,
                row.mean_rate,
                row.max_rate,
                row.fraction_above_k,
                row.k,
            )
            for row in rows
        ],
    )
