"""Experiment E7: puncturing pushes the rate above k bits/symbol.

Section 3.1: "In our experiments, we actually obtain rates higher than k
bits/symbol using puncturing, where the transmitter does not send each
successive spine value in every pass."  This experiment compares the
available schedules at high SNR and reports how often the achieved rate
exceeds the un-punctured ceiling of ``k``.

Registered as ``puncturing``; ``puncturing_experiment`` is a thin wrapper
over the registry engine that adapts cells to the historical rows.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.registry import Experiment, register, run_experiment
from repro.experiments.runner import (
    SpinalRunConfig,
    awgn_seed_labels,
    awgn_trial,
    require_engine_compatible,
    spinal_fixed,
    spinal_overrides,
)
from repro.experiments.spec import Axis, Column, PlotSpec, SweepSpec
from repro.utils.results import mean, render_table, std_error

__all__ = [
    "PuncturingRow",
    "puncturing_experiment",
    "puncturing_table",
    "PUNCTURING_EXPERIMENT",
]

DEFAULT_SCHEDULES = ("none", "symbol", "strided", "tail-first")


def puncturing_point(params, rng) -> dict:
    """Registry kernel: one spinal trial under this cell's schedule."""
    return awgn_trial({**params, "puncturing": params["schedule"]}, rng)


def puncturing_aggregate(params, trials) -> dict:
    rates = [float(t["rate"]) for t in trials]
    k = int(params["k"])
    return {
        "rate": mean(rates),
        "rate_stderr": std_error(rates),
        "max_rate": max(rates),
        "fraction_above_k": sum(1 for r in rates if r > k) / len(rates),
        "success": mean([1.0 if t["ok"] else 0.0 for t in trials]),
    }


def _puncturing_fixed() -> dict:
    fixed = spinal_fixed()
    fixed.pop("puncturing")
    return fixed


PUNCTURING_EXPERIMENT = register(
    Experiment(
        name="puncturing",
        description="E7: puncturing schedules vs rate at high SNR (rates above k b/sym)",
        spec=SweepSpec(
            axes=(
                Axis("schedule", DEFAULT_SCHEDULES, "str"),
                Axis("snr_db", (20.0, 30.0, 40.0), "float"),
            ),
            fixed=_puncturing_fixed(),
        ),
        run_point=puncturing_point,
        columns=(
            Column("schedule", "schedule"),
            Column("SNR(dB)", "snr_db"),
            Column("mean rate", "rate"),
            Column("max rate", "max_rate"),
            Column("frac > k", "fraction_above_k"),
            Column("k", "k"),
        ),
        n_trials=25,
        aggregate=puncturing_aggregate,
        seed_labels=awgn_seed_labels,
        smoke={
            "schedule": ("none", "tail-first"),
            "snr_db": (25.0,),
            "payload_bits": 16,
            "k": 4,
            "c": 6,
            "beam_width": 8,
            "n_trials": 2,
        },
        plot=PlotSpec(
            x="snr_db",
            y="rate",
            series="schedule",
            x_label="SNR (dB)",
            y_label="bits/symbol",
        ),
    )
)


@dataclass(frozen=True)
class PuncturingRow:
    """One (schedule, SNR) measurement."""

    schedule: str
    snr_db: float
    mean_rate: float
    max_rate: float
    fraction_above_k: float
    k: int

    @property
    def exceeds_k(self) -> bool:
        """Whether any trial beat the un-punctured ceiling of k bits/symbol."""
        return self.max_rate > self.k


def puncturing_experiment(
    snr_values_db=(20.0, 30.0, 40.0),
    schedules=DEFAULT_SCHEDULES,
    base_config: SpinalRunConfig | None = None,
) -> list[PuncturingRow]:
    """Measure every schedule at high SNR."""
    if base_config is None:
        base_config = SpinalRunConfig(n_trials=25)
    require_engine_compatible(base_config)
    overrides = spinal_overrides(base_config)
    overrides.pop("puncturing")
    overrides["schedule"] = tuple(str(s) for s in schedules)
    overrides["snr_db"] = tuple(float(s) for s in snr_values_db)
    outcome = run_experiment(
        PUNCTURING_EXPERIMENT,
        overrides=overrides,
        n_trials=base_config.n_trials,
        seed=base_config.seed,
        n_workers=base_config.n_workers,
    )
    return [
        PuncturingRow(
            schedule=str(params["schedule"]),
            snr_db=float(params["snr_db"]),
            mean_rate=cell["aggregate"]["rate"],
            max_rate=cell["aggregate"]["max_rate"],
            fraction_above_k=cell["aggregate"]["fraction_above_k"],
            k=int(params["k"]),
        )
        for _key, params, cell in outcome.successful_cells()
    ]


def puncturing_table(rows: list[PuncturingRow]) -> str:
    return render_table(
        ["schedule", "SNR(dB)", "mean rate", "max rate", "frac > k", "k"],
        [
            (
                row.schedule,
                row.snr_db,
                row.mean_rate,
                row.max_rate,
                row.fraction_above_k,
                row.k,
            )
            for row in rows
        ],
    )
