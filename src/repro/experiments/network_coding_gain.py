"""Experiment E20: medium uses saved by XOR network coding vs link asymmetry.

Two coded topologies, one question — how much airtime does re-encoding XOR
combinations at a relay save over plain store-and-forward, and how fast does
that gain erode as the links become asymmetric?

* ``two-way`` — endpoints A and B swap payloads through a relay
  (:func:`repro.netcode.run_two_way_exchange`): the XOR scheme replaces the
  baseline's two unicast downlinks with *one* broadcast both endpoints
  un-XOR, so the ideal saving is 25% of total uses (one of four equal-cost
  phases).  ``snr_offset_db`` detunes the B-side link; the broadcast must
  run until the *weaker* endpoint decodes, so asymmetry eats the gain.
* ``butterfly`` — the classic network-coding example as a validated DAG
  (:func:`repro.link.topology.butterfly`) under the shared event clock:
  both sources reach both sinks, the middle edge is the bottleneck, and
  XOR-ing at the relay sends one combination per round where plain
  forwarding sends two payloads.  ``snr_offset_db`` detunes the bottleneck
  edge.

Columns: total coded/plain medium uses, the overall saving, the saving on
the shared link alone (the broadcast downlink / the bottleneck edge), and
per-scheme delivery rates.  Kernels are deterministic functions of the
injected base seed — every noise and payload stream derives from it via
labels — so cells are worker-count invariant (``max_trials = 1``) and the
engine-provided ``rng`` is unused.  Codes run at smoke scale (the same
economy as ``city-scaling``); the full-scale operating point is pinned in
``benchmarks/bench_network_coding.py``.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.registry import Experiment, register
from repro.experiments.spec import Axis, Column, PlotSpec, SweepSpec
from repro.link.topology import build_dag_sessions, butterfly, simulate_dag_transport
from repro.link.transport import TransportConfig
from repro.netcode import TwoWayConfig, run_two_way_exchange
from repro.utils.rng import spawn_rng

__all__ = [
    "network_coding_point",
    "NETWORK_CODING_GAIN_EXPERIMENT",
]


def _two_way_point(params) -> dict:
    config = TwoWayConfig(
        family=str(params["family"]),
        snr_a_db=float(params["snr_db"]),
        snr_b_db=float(params["snr_db"]) + float(params["snr_offset_db"]),
        rounds=int(params["rounds"]),
        seed=int(params["seed"]),
        smoke=bool(params["smoke_codes"]),
        max_symbols=int(params["max_symbols"]),
    )
    result = run_two_way_exchange(config)
    return {
        "coded_uses": result.xor_total_uses,
        "plain_uses": result.baseline_total_uses,
        "saving": result.medium_use_saving,
        "shared_link_saving": result.downlink_saving,
        "delivered_coded": result.xor_delivery_rate,
        "delivered_plain": result.baseline_delivery_rate,
    }


def _butterfly_delivery_rate(result, expected) -> float:
    """Fraction of (sink, round) slots where both sources' payloads resolve."""
    sinks = result.topology.sinks
    total = len(sinks) * result.n_rounds
    good = 0
    for sink in sinks:
        resolved = result.recovered(sink)
        for rnd in range(result.n_rounds):
            if all(
                (rnd, src) in resolved
                and np.array_equal(resolved[(rnd, src)], expected[(rnd, src)])
                for src in ("src-a", "src-b")
            ):
                good += 1
    return good / total if total else 0.0


def _butterfly_point(params) -> dict:
    seed = int(params["seed"])
    rounds = int(params["rounds"])
    topology = butterfly(
        snr_db=float(params["snr_db"]),
        bottleneck_snr_db=float(params["snr_db"]) + float(params["snr_offset_db"]),
    )
    sessions = build_dag_sessions(
        str(params["family"]),
        topology,
        seed=seed,
        smoke=bool(params["smoke_codes"]),
        max_symbols=int(params["max_symbols"]),
    )
    payload_bits = sessions[0].payload_bits
    payloads = {
        src: [
            spawn_rng(seed, "netcode-gain", "payload", src, rnd)
            .integers(0, 2, size=payload_bits)
            .astype(np.uint8)
            for rnd in range(rounds)
        ]
        for src in topology.sources
    }
    expected = {
        (rnd, src): payloads[src][rnd]
        for src in topology.sources
        for rnd in range(rounds)
    }
    config = TransportConfig(seed=seed)
    runs = {}
    for label, xor_nodes in (("coded", ("relay",)), ("plain", ())):
        sessions = build_dag_sessions(
            str(params["family"]),
            topology,
            seed=seed,
            smoke=bool(params["smoke_codes"]),
            max_symbols=int(params["max_symbols"]),
        )
        runs[label] = simulate_dag_transport(
            topology, sessions, payloads, config, xor_nodes=xor_nodes
        )
    coded, plain = runs["coded"], runs["plain"]
    bottleneck_coded = coded.symbols_on_edge("relay", "spread")
    bottleneck_plain = plain.symbols_on_edge("relay", "spread")
    return {
        "coded_uses": coded.total_symbols_sent,
        "plain_uses": plain.total_symbols_sent,
        "saving": (
            1.0 - coded.total_symbols_sent / plain.total_symbols_sent
            if plain.total_symbols_sent
            else 0.0
        ),
        "shared_link_saving": (
            1.0 - bottleneck_coded / bottleneck_plain if bottleneck_plain else 0.0
        ),
        "delivered_coded": _butterfly_delivery_rate(coded, expected),
        "delivered_plain": _butterfly_delivery_rate(plain, expected),
    }


def network_coding_point(params, rng) -> dict:
    """Registry kernel: one (offset, family, topology) network-coding cell.

    Deterministic given the parameters — every stream derives from the
    injected base seed, so the engine-provided ``rng`` is unused.
    """
    if str(params["topology"]) == "two-way":
        return _two_way_point(params)
    return _butterfly_point(params)


NETWORK_CODING_GAIN_EXPERIMENT = register(
    Experiment(
        name="network-coding-gain",
        description=(
            "E20: medium uses saved by XOR network coding (two-way relay "
            "and butterfly) vs SNR asymmetry × code family"
        ),
        spec=SweepSpec(
            axes=(
                Axis("snr_offset_db", (0.0, -4.0, -8.0, -12.0), "float"),
                Axis("family", ("spinal", "lt"), "str"),
                Axis("topology", ("two-way", "butterfly"), "str"),
            ),
            fixed={
                "snr_db": 33.0,
                "rounds": 4,
                "max_symbols": 4096,
                "smoke_codes": True,
            },
        ),
        run_point=network_coding_point,
        columns=(
            Column("offset (dB)", "snr_offset_db"),
            Column("family", "family"),
            Column("topology", "topology"),
            Column("coded uses", "coded_uses"),
            Column("plain uses", "plain_uses"),
            Column("saving", "saving"),
            Column("shared-link saving", "shared_link_saving"),
            Column("delivered (coded)", "delivered_coded"),
            Column("delivered (plain)", "delivered_plain"),
        ),
        n_trials=1,
        max_trials=1,  # every stream derives from the base seed
        smoke={
            "snr_offset_db": (0.0, -8.0),
            "family": ("spinal", "lt"),
            "topology": ("two-way", "butterfly"),
            "rounds": 4,
        },
        plot=PlotSpec(
            x="snr_offset_db",
            y="saving",
            series="topology",
            x_label="SNR offset on the weak link (dB)",
            y_label="medium-use saving",
        ),
    )
)
