"""Experiment E17: rateless vs threshold rate adaptation, at the cell level.

This is the paper's headline claim measured where it is made.  Two cells
carry identical traffic over identical per-user channels under the same MAC
scheduler; only the PHY stopping rule differs:

* ``rateless`` — every user runs the spinal rateless session (stop at the
  first decodable prefix, no rate selection anywhere);
* ``adaptive`` — every user runs the status quo: threshold rate adaptation
  (:func:`repro.mac.adaptive.calibrate_spinal_rate_policy`, the
  :mod:`repro.baselines.rate_adaptation` policy over a *fixed-rate spinal*
  menu), pre-committing to a pass count per frame and retransmitting whole
  frames on failure.

The swept axis is the cell's SNR *spread*: with every user at the center
SNR a well-calibrated adapter is merely quantised; as the spread grows the
single menu must serve users it was never matched to, and the rateless
cell's advantage widens.  The test suite asserts the rateless aggregate
goodput is at least the adaptive one at every spread point (at smoke
scale), which is the claim's falsifiable form.

Both modes share the menu's code family (spinal), channels, budgets, MAC
and traffic, so the measured gap isolates *ratelessness* itself.
"""

from __future__ import annotations

from repro.experiments.cell_scaling import (
    build_cell_channel,
    build_rateless_cell_users,
    cell_metrics,
)
from repro.experiments.registry import Experiment, register
from repro.experiments.runner import spinal_config_from_params, spinal_fixed
from repro.experiments.spec import Axis, Column, PlotSpec, SweepSpec
from repro.mac.adaptive import AdaptiveSpinalLink, calibrate_spinal_rate_policy
from repro.mac.cell import CellUser, simulate_cell, spread_snrs
from repro.mac.schedulers import make_scheduler
from repro.utils.bitops import random_message_bits
from repro.utils.rng import spawn_rng

__all__ = ["cell_mode_point", "CELL_MODE_EXPERIMENT"]

#: Per-process memo of calibrated policies.  Calibration is the dominant
#: cost of an adaptive cell yet depends on none of the swept axes, so every
#: adaptive cell of a sweep would otherwise redo identical Monte-Carlo work
#: (the rng is rebuilt from the seed per call, so the memo is byte-exact).
_POLICY_CACHE: dict[tuple, object] = {}


def _calibrated_policy(config, params):
    key = (
        config.payload_bits,
        config.params,
        config.beam_width,
        config.adc_bits,
        tuple(int(p) for p in params["pass_choices"]),
        tuple(float(s) for s in params["calib_snr_grid_db"]),
        int(params["calib_frames"]),
        float(params["target_fer"]),
        int(params["seed"]),
    )
    policy = _POLICY_CACHE.get(key)
    if policy is None:
        policy = calibrate_spinal_rate_policy(
            payload_bits=config.payload_bits,
            params=config.params,
            beam_width=config.beam_width,
            adc_bits=config.adc_bits,
            pass_choices=key[4],
            snr_grid_db=key[5],
            n_frames=key[6],
            target_frame_error_rate=key[7],
            rng=spawn_rng(key[8], "cell-calibration"),
        )
        _POLICY_CACHE[key] = policy
    return policy


def _build_adaptive_users(params, snrs_db) -> list[CellUser]:
    """Adaptive users: one shared calibrated policy, per-user channels/CSI."""
    config = spinal_config_from_params(params)
    seed = int(params["seed"])
    packets_per_user = int(params["packets_per_user"])
    policy = _calibrated_policy(config, params)
    users = []
    for user, snr_db in enumerate(snrs_db):
        channel = build_cell_channel(
            str(params["channel"]), float(snr_db), config.adc_bits, user, len(snrs_db)
        )
        link = AdaptiveSpinalLink(
            policy=policy,
            channel=channel,
            payload_bits=config.payload_bits,
            params=config.params,
            beam_width=config.beam_width,
            max_symbols=int(params["max_symbols"]),
        )
        payloads = [
            random_message_bits(
                config.payload_bits, spawn_rng(seed, "cell-payload", user, i)
            )
            for i in range(packets_per_user)
        ]
        users.append(CellUser(link, payloads))
    return users


def cell_mode_point(params, rng) -> dict:
    """Registry kernel: one (mode, snr_spread) cell simulation.

    The traffic (payload streams, per-packet noise streams, MAC order) is
    identical across the two modes — same seed derivations — so each spread
    point is a paired comparison.
    """
    n_users = int(params["n_users"])
    snrs = spread_snrs(
        float(params["snr_center_db"]), float(params["snr_spread_db"]), n_users
    )
    mode = str(params["mode"])
    if mode == "rateless":
        users = build_rateless_cell_users(params, snrs)
    elif mode == "adaptive":
        users = _build_adaptive_users(params, snrs)
    else:
        raise ValueError(f"unknown mode {mode!r}; expected 'rateless' or 'adaptive'")
    result = simulate_cell(
        users, make_scheduler(str(params["scheduler"])), seed=int(params["seed"])
    )
    return cell_metrics(result)


CELL_MODE_EXPERIMENT = register(
    Experiment(
        name="cell-rateless-vs-adaptive",
        description="E17: cell-level rateless vs threshold rate adaptation across SNR spread",
        spec=SweepSpec(
            axes=(
                Axis("mode", ("rateless", "adaptive"), "str"),
                Axis("snr_spread_db", (0.0, 6.0, 12.0, 18.0), "float"),
            ),
            fixed={
                **spinal_fixed(search="sequential", max_symbols=4096),
                "n_users": 4,
                "scheduler": "round-robin",
                "snr_center_db": 12.0,
                "packets_per_user": 4,
                "channel": "awgn",
                "pass_choices": (1, 2, 3, 4, 6, 8),
                "calib_snr_grid_db": (0.0, 2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 14.0,
                                      16.0, 18.0, 20.0, 22.0, 24.0),
                "calib_frames": 8,
                "target_fer": 0.1,
            },
        ),
        run_point=cell_mode_point,
        columns=(
            Column("mode", "mode"),
            Column("SNR spread (dB)", "snr_spread_db"),
            Column("goodput (b/sym-t)", "goodput"),
            Column("fairness", "fairness"),
            Column("delivered", "delivered_fraction"),
            Column("mean latency", "mean_latency"),
            Column("symbols", "total_symbols"),
        ),
        n_trials=1,
        max_trials=1,  # the simulation derives every stream from the base seed
        smoke={
            "mode": ("rateless", "adaptive"),
            "snr_spread_db": (0.0, 8.0),
            "n_users": 2,
            "packets_per_user": 2,
            "max_symbols": 512,
            "pass_choices": (1, 2, 4, 8),
            "calib_snr_grid_db": (0.0, 4.0, 8.0, 12.0, 16.0, 20.0),
            "calib_frames": 3,
            "payload_bits": 16,
            "k": 4,
            "c": 6,
            "beam_width": 8,
        },
        plot=PlotSpec(
            x="snr_spread_db",
            y="goodput",
            series="mode",
            x_label="SNR spread across users (dB)",
            y_label="aggregate goodput",
        ),
    )
)
