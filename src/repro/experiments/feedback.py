"""Experiment E13: the cost of realistic feedback (Section 6, future work).

The paper's evaluation assumes free, instantaneous feedback; it explicitly
lists a feedback link-layer protocol as future work and notes an eventual
system "ought to use a feedback protocol to achieve the best possible
trade-off between throughput and latency".  This experiment quantifies that
trade-off: it measures the per-packet symbol requirements of the spinal code
at one SNR, then applies different feedback models (perfect, delayed,
per-block with overhead) and reports the retained throughput.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.runner import SpinalRunConfig, run_spinal_point
from repro.link.feedback import BlockFeedback, DelayedFeedback, FeedbackModel, PerfectFeedback
from repro.link.session import simulate_link_session
from repro.utils.results import render_table

__all__ = ["FeedbackRow", "feedback_experiment", "feedback_table", "default_feedback_models"]


def default_feedback_models(n_segments: int) -> list[FeedbackModel]:
    """A representative set of feedback models for the E13 sweep."""
    return [
        PerfectFeedback(),
        DelayedFeedback(delay_symbols=2),
        DelayedFeedback(delay_symbols=8),
        BlockFeedback(block_symbols=n_segments, overhead_symbols=1),
        BlockFeedback(block_symbols=4 * n_segments, overhead_symbols=1),
        BlockFeedback(block_symbols=16 * n_segments, overhead_symbols=2),
    ]


@dataclass(frozen=True)
class FeedbackRow:
    """Throughput of one feedback model at one SNR."""

    model: str
    snr_db: float
    throughput: float
    ideal_throughput: float
    efficiency: float
    mean_symbols_per_packet: float


def feedback_experiment(
    snr_values_db=(5.0, 15.0),
    config: SpinalRunConfig | None = None,
    models: list[FeedbackModel] | None = None,
) -> list[FeedbackRow]:
    """Apply each feedback model to measured per-packet symbol counts."""
    if config is None:
        config = SpinalRunConfig(n_trials=40)
    framer = config.build_framer()
    if models is None:
        models = default_feedback_models(framer.n_segments)
    rows = []
    for snr_db in snr_values_db:
        measurement = run_spinal_point(config, float(snr_db))
        for model in models:
            session = simulate_link_session(
                measurement.symbols_sent,
                payload_bits_per_packet=config.payload_bits,
                feedback=model,
            )
            rows.append(
                FeedbackRow(
                    model=model.describe(),
                    snr_db=float(snr_db),
                    throughput=session.throughput_bits_per_symbol,
                    ideal_throughput=session.ideal_throughput_bits_per_symbol,
                    efficiency=session.feedback_efficiency,
                    mean_symbols_per_packet=session.mean_packet_symbols,
                )
            )
    return rows


def feedback_table(rows: list[FeedbackRow]) -> str:
    return render_table(
        ["feedback model", "SNR(dB)", "throughput", "ideal", "efficiency", "sym/packet"],
        [
            (
                row.model,
                row.snr_db,
                row.throughput,
                row.ideal_throughput,
                row.efficiency,
                row.mean_symbols_per_packet,
            )
            for row in rows
        ],
    )
