"""Experiment E13: the cost of realistic feedback (Section 6, future work).

The paper's evaluation assumes free, instantaneous feedback; it explicitly
lists a feedback link-layer protocol as future work and notes an eventual
system "ought to use a feedback protocol to achieve the best possible
trade-off between throughput and latency".  This experiment quantifies that
trade-off: it measures the per-packet symbol requirements of the spinal code
at one SNR, then applies different feedback models (perfect, delayed,
per-block with overhead) and reports the retained throughput.

Registered as ``feedback`` with a string-valued ``model`` axis so the sweep
stays declarative: ``perfect``, ``delayed:<symbols>``, and
``block:<size>:<overhead>`` where ``<size>`` is either an absolute symbol
count or ``<N>x`` for N times the frame's segment count.  The per-trial
kernel measures symbols (paired across models — every model cell at one SNR
sees the same trial streams); the cell aggregate prices the model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.registry import Experiment, register, run_experiment
from repro.experiments.runner import (
    SpinalRunConfig,
    awgn_seed_labels,
    awgn_trial,
    require_engine_compatible,
    run_spinal_point,
    spinal_config_from_params,
    spinal_fixed,
    spinal_overrides,
)
from repro.experiments.spec import Axis, Column, SweepSpec
from repro.link.feedback import BlockFeedback, DelayedFeedback, FeedbackModel, PerfectFeedback
from repro.link.session import _accounted_link_session
from repro.utils.results import render_table

__all__ = [
    "FeedbackRow",
    "feedback_experiment",
    "feedback_table",
    "default_feedback_models",
    "parse_feedback_model",
    "DEFAULT_MODEL_SPECS",
    "FEEDBACK_EXPERIMENT",
]

#: Declarative spellings of :func:`default_feedback_models`, in the same order.
DEFAULT_MODEL_SPECS = (
    "perfect",
    "delayed:2",
    "delayed:8",
    "block:1x:1",
    "block:4x:1",
    "block:16x:2",
)


def default_feedback_models(n_segments: int) -> list[FeedbackModel]:
    """A representative set of feedback models for the E13 sweep."""
    return [parse_feedback_model(spec, n_segments) for spec in DEFAULT_MODEL_SPECS]


def parse_feedback_model(spec: str, n_segments: int) -> FeedbackModel:
    """Build a feedback model from its declarative axis spelling."""
    if spec == "perfect":
        return PerfectFeedback()
    kind, _, rest = spec.partition(":")
    if kind == "delayed" and rest:
        return DelayedFeedback(delay_symbols=int(rest))
    if kind == "block" and rest:
        size, _, overhead = rest.partition(":")
        if size.endswith("x"):
            block_symbols = int(size[:-1]) * n_segments
        else:
            block_symbols = int(size)
        return BlockFeedback(
            block_symbols=block_symbols, overhead_symbols=int(overhead or 1)
        )
    raise ValueError(
        f"unknown feedback model {spec!r}; expected 'perfect', 'delayed:<symbols>' "
        "or 'block:<size|Nx>:<overhead>'"
    )


def feedback_point(params, rng) -> dict:
    """Registry kernel: one spinal trial (the model is priced in aggregate)."""
    return awgn_trial(params, rng)


def feedback_aggregate(params, trials) -> dict:
    """Apply this cell's feedback model to the measured symbol counts."""
    config = spinal_config_from_params(params)
    framer = config.build_framer()
    model = parse_feedback_model(str(params["model"]), framer.n_segments)
    session = _accounted_link_session(
        [int(t["symbols"]) for t in trials],
        payload_bits_per_packet=config.payload_bits,
        feedback=model,
    )
    return {
        "model_label": model.describe(),
        "throughput": session.throughput_bits_per_symbol,
        "ideal_throughput": session.ideal_throughput_bits_per_symbol,
        "efficiency": session.feedback_efficiency,
        "symbols_per_packet": session.mean_packet_symbols,
    }


FEEDBACK_EXPERIMENT = register(
    Experiment(
        name="feedback",
        description="E13: throughput retained under realistic feedback models",
        spec=SweepSpec(
            axes=(
                Axis("snr_db", (5.0, 15.0), "float"),
                Axis("model", DEFAULT_MODEL_SPECS, "str"),
            ),
            fixed=spinal_fixed(),
        ),
        run_point=feedback_point,
        columns=(
            Column("feedback model", "model_label"),
            Column("SNR(dB)", "snr_db"),
            Column("throughput", "throughput"),
            Column("ideal", "ideal_throughput"),
            Column("efficiency", "efficiency"),
            Column("sym/packet", "symbols_per_packet"),
        ),
        n_trials=40,
        aggregate=feedback_aggregate,
        seed_labels=awgn_seed_labels,
        # The kernel never reads `model` (it is priced in aggregate), so the
        # engine measures each SNR's trials once and shares them across all
        # model cells instead of redoing identical Monte-Carlo work 6x.
        trial_invariant_axes=("model",),
        smoke={
            "snr_db": (10.0,),
            "model": ("perfect", "delayed:2"),
            "payload_bits": 16,
            "k": 4,
            "c": 6,
            "beam_width": 8,
            "n_trials": 3,
        },
    )
)


@dataclass(frozen=True)
class FeedbackRow:
    """Throughput of one feedback model at one SNR."""

    model: str
    snr_db: float
    throughput: float
    ideal_throughput: float
    efficiency: float
    mean_symbols_per_packet: float


def feedback_experiment(
    snr_values_db=(5.0, 15.0),
    config: SpinalRunConfig | None = None,
    models: list[FeedbackModel] | None = None,
) -> list[FeedbackRow]:
    """Apply each feedback model to measured per-packet symbol counts.

    With the default models this routes through the experiment registry;
    custom :class:`FeedbackModel` objects cannot be spelled as axis values,
    so that path measures with :func:`run_spinal_point` and prices the
    models directly (same numbers, no persistence).
    """
    if config is None:
        config = SpinalRunConfig(n_trials=40)
    if models is not None:
        rows = []
        for snr_db in snr_values_db:
            measurement = run_spinal_point(config, float(snr_db))
            for model in models:
                session = _accounted_link_session(
                    measurement.symbols_sent,
                    payload_bits_per_packet=config.payload_bits,
                    feedback=model,
                )
                rows.append(
                    FeedbackRow(
                        model=model.describe(),
                        snr_db=float(snr_db),
                        throughput=session.throughput_bits_per_symbol,
                        ideal_throughput=session.ideal_throughput_bits_per_symbol,
                        efficiency=session.feedback_efficiency,
                        mean_symbols_per_packet=session.mean_packet_symbols,
                    )
                )
        return rows
    require_engine_compatible(config)
    outcome = run_experiment(
        FEEDBACK_EXPERIMENT,
        overrides={
            **spinal_overrides(config),
            "snr_db": tuple(float(s) for s in snr_values_db),
        },
        n_trials=config.n_trials,
        seed=config.seed,
        n_workers=config.n_workers,
    )
    return [
        FeedbackRow(
            model=cell["aggregate"]["model_label"],
            snr_db=float(params["snr_db"]),
            throughput=cell["aggregate"]["throughput"],
            ideal_throughput=cell["aggregate"]["ideal_throughput"],
            efficiency=cell["aggregate"]["efficiency"],
            mean_symbols_per_packet=cell["aggregate"]["symbols_per_packet"],
        )
        for _key, params, cell in outcome.successful_cells()
    ]


def feedback_table(rows: list[FeedbackRow]) -> str:
    return render_table(
        ["feedback model", "SNR(dB)", "throughput", "ideal", "efficiency", "sym/packet"],
        [
            (
                row.model,
                row.snr_db,
                row.throughput,
                row.ideal_throughput,
                row.efficiency,
                row.mean_symbols_per_packet,
            )
            for row in rows
        ],
    )
