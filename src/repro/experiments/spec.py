"""Declarative sweep specifications for the experiment registry.

An experiment's parameter space is described *declaratively*: a tuple of
typed :class:`Axis` objects (the swept dimensions, in report order) plus a
mapping of fixed parameters.  The :class:`SweepSpec` expands that grid into
cells, assigns each cell a stable string key, and canonicalises the whole
specification into a JSON document whose content hash keys the persisted
results store — two invocations with the same spec resolve to the same
hash and therefore the same cached cells, regardless of worker count.

Everything in a spec must be JSON-native (int/float/str/bool/None, plus
lists/tuples of those) so that specs hash stably and round-trip through the
results store.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field
from typing import Mapping, Sequence

__all__ = [
    "Axis",
    "SweepSpec",
    "Column",
    "PlotSpec",
    "spec_hash",
    "canonical_json",
]

#: Version of the spec/run-record layout; bumped on incompatible changes so
#: stale store files are never silently reinterpreted.
SPEC_SCHEMA_VERSION = 1

_KINDS = ("int", "float", "str", "bool")


def _check_jsonable(value: object, context: str) -> object:
    """Normalise ``value`` to a JSON-native type, rejecting anything else."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_check_jsonable(v, context) for v in value]
    raise TypeError(f"{context}: value {value!r} is not JSON-native")


@dataclass(frozen=True)
class Axis:
    """One typed swept dimension of an experiment.

    ``kind`` drives both value coercion (so ``10`` and ``10.0`` hash the
    same on a float axis) and CLI parsing of ``--set name=v1,v2`` overrides.
    ``optional=True`` admits ``None`` as a value (spelled ``none`` on the
    command line), e.g. an ADC depth axis where ``None`` means "no
    quantiser".
    """

    name: str
    values: tuple
    kind: str = "float"
    optional: bool = False

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"axis {self.name!r}: unknown kind {self.kind!r}")
        if not self.values:
            raise ValueError(f"axis {self.name!r} has no values")
        object.__setattr__(self, "values", tuple(self.coerce(v) for v in self.values))

    def coerce(self, value: object):
        """Normalise one value to the axis type (``None`` if optional)."""
        if value is None:
            if not self.optional:
                raise ValueError(f"axis {self.name!r} does not admit None")
            return None
        if self.kind == "int":
            return int(value)
        if self.kind == "float":
            return float(value)
        if self.kind == "bool":
            if isinstance(value, str):
                return value.lower() in ("1", "true", "yes")
            return bool(value)
        return str(value)

    def parse(self, token: str):
        """Parse one CLI token into an axis value."""
        if self.optional and token.lower() in ("none", "null"):
            return None
        return self.coerce(token)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "optional": self.optional,
            "values": list(self.values),
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "Axis":
        return cls(
            name=data["name"],
            values=tuple(data["values"]),
            kind=data["kind"],
            optional=data.get("optional", False),
        )


def format_key_value(value: object) -> str:
    """Canonical spelling of one axis value inside a cell key."""
    if isinstance(value, str):
        return value
    return json.dumps(value)


@dataclass(frozen=True)
class SweepSpec:
    """A declarative parameter grid: typed axes plus fixed parameters.

    ``axes`` order is the report order (first axis varies slowest, exactly
    like nested for-loops in the pre-registry experiment modules).  The
    names ``seed`` and ``n_trials`` are reserved for the engine, which
    injects the resolved seed into every kernel's parameter mapping.
    """

    axes: tuple[Axis, ...] = ()
    fixed: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "axes", tuple(self.axes))
        object.__setattr__(self, "fixed", dict(self.fixed))
        names = [axis.name for axis in self.axes]
        duplicates = {n for n in names if names.count(n) > 1}
        if duplicates:
            raise ValueError(f"duplicate axes: {sorted(duplicates)}")
        overlap = set(names) & set(self.fixed)
        if overlap:
            raise ValueError(f"names are both axis and fixed: {sorted(overlap)}")
        for reserved in ("seed", "n_trials"):
            if reserved in names or reserved in self.fixed:
                raise ValueError(f"{reserved!r} is reserved for the engine")
        for key, value in self.fixed.items():
            _check_jsonable(value, f"fixed parameter {key!r}")

    # -- introspection -------------------------------------------------------
    @property
    def axis_names(self) -> tuple[str, ...]:
        return tuple(axis.name for axis in self.axes)

    @property
    def known_names(self) -> tuple[str, ...]:
        return self.axis_names + tuple(self.fixed)

    def axis(self, name: str) -> Axis:
        for axis in self.axes:
            if axis.name == name:
                return axis
        raise KeyError(name)

    # -- grid expansion ------------------------------------------------------
    def cells(self) -> list[tuple[str, dict]]:
        """Expand the grid to ``(cell_key, params)`` pairs in report order.

        ``params`` merges the fixed parameters with this cell's axis values;
        ``cell_key`` is a stable human-readable identifier built from the
        axis values only (fixed parameters live in the spec, not the key).
        """
        expanded = []
        value_lists = [axis.values for axis in self.axes]
        for combo in itertools.product(*value_lists):
            axis_params = dict(zip(self.axis_names, combo))
            key = self.cell_key(axis_params)
            expanded.append((key, {**self.fixed, **axis_params}))
        return expanded

    def cell_key(self, axis_params: Mapping[str, object]) -> str:
        """Stable key for one cell, e.g. ``"schedule=none,snr_db=10.0"``."""
        if not self.axes:
            return "all"
        return ",".join(
            f"{axis.name}={format_key_value(axis_params[axis.name])}"
            for axis in self.axes
        )

    # -- overrides -----------------------------------------------------------
    def with_values(self, overrides: Mapping[str, object]) -> "SweepSpec":
        """Replace axis values and/or fixed parameters, by name.

        Axis overrides accept a single value or a sequence of values (each
        coerced to the axis type); fixed overrides replace the stored value.
        Unknown names raise with the list of valid ones.
        """
        axes = list(self.axes)
        fixed = dict(self.fixed)
        axis_index = {axis.name: i for i, axis in enumerate(axes)}
        for name, value in overrides.items():
            if name in axis_index:
                values = value if isinstance(value, (list, tuple)) else (value,)
                i = axis_index[name]
                axes[i] = Axis(
                    name=name,
                    values=tuple(values),
                    kind=axes[i].kind,
                    optional=axes[i].optional,
                )
            elif name in fixed:
                fixed[name] = _check_jsonable(value, f"fixed parameter {name!r}")
            else:
                raise KeyError(
                    f"unknown parameter {name!r}; expected one of {sorted(self.known_names)}"
                )
        return SweepSpec(axes=tuple(axes), fixed=fixed)

    # -- serialization -------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "axes": [axis.to_dict() for axis in self.axes],
            "fixed": {k: _check_jsonable(v, k) for k, v in sorted(self.fixed.items())},
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "SweepSpec":
        return cls(
            axes=tuple(Axis.from_dict(a) for a in data["axes"]),
            fixed=dict(data["fixed"]),
        )


@dataclass(frozen=True)
class Column:
    """One column of an experiment's report table.

    ``source`` names either an aggregate metric or a (fixed or axis)
    parameter; the renderer looks the value up in that order.
    ``none_text`` is what a ``None`` value renders as (e.g. ``"inf"`` for
    an ADC-depth column where ``None`` means "no quantiser").
    """

    header: str
    source: str
    none_text: str = ""


@dataclass(frozen=True)
class PlotSpec:
    """Declarative ASCII-plot description: y metric over one numeric axis.

    ``series`` optionally names a second axis; each of its values becomes
    one labelled curve.
    """

    x: str
    y: str
    series: str | None = None
    x_label: str | None = None
    y_label: str | None = None


def canonical_json(document: object) -> str:
    """Serialise a JSON document deterministically (sorted keys, no spaces)."""
    return json.dumps(document, sort_keys=True, separators=(",", ":"))


def spec_hash(
    experiment: str, spec: SweepSpec, n_trials: int, seed: int
) -> str:
    """Content hash identifying one fully-resolved experiment specification.

    Everything that can change the persisted numbers participates: the
    experiment name, the schema version, every axis (name, kind, values),
    every fixed parameter, the per-cell trial count, and the base seed.
    """
    document = {
        "schema_version": SPEC_SCHEMA_VERSION,
        "experiment": experiment,
        "spec": spec.to_dict(),
        "n_trials": int(n_trials),
        "seed": int(seed),
    }
    digest = hashlib.blake2b(canonical_json(document).encode(), digest_size=16)
    return digest.hexdigest()
