"""Experiment E12: how much the LDPC baseline owes to its decoder budget.

Figure 2 decodes the LDPC baselines with 40 belief-propagation iterations.
This ablation sweeps the iteration budget (and the sum-product vs min-sum
algorithm choice) near each configuration's waterfall, confirming that the
baseline in the reproduction is not handicapped by a weak decoder.

Two registry experiments live here:

* ``ldpc-ablation`` — the E12 (algorithm × iteration budget) FER sweep;
* ``ldpc-rate`` — achieved rate of one fixed LDPC configuration across SNR
  (what the ``repro ldpc`` CLI command measures).

``ldpc_iteration_experiment`` is a thin wrapper over the registry engine
that adapts cells to the historical rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from repro.baselines.ldpc_system import FixedRateLdpcSystem, LdpcConfig
from repro.experiments.registry import Experiment, register, run_experiment
from repro.experiments.spec import Axis, Column, PlotSpec, SweepSpec
from repro.utils.results import render_table

__all__ = [
    "LdpcAblationRow",
    "ldpc_iteration_experiment",
    "ldpc_iteration_table",
    "LDPC_ABLATION_EXPERIMENT",
    "LDPC_RATE_EXPERIMENT",
]

DEFAULT_ITERATIONS = (5, 10, 20, 40, 80)


def _ldpc_config(params) -> LdpcConfig:
    return LdpcConfig(Fraction(str(params["rate"])), str(params["modulation"]))


def ldpc_ablation_point(params, rng) -> dict:
    """Registry kernel: FER of one (algorithm, iteration budget) cell."""
    config = _ldpc_config(params)
    system = FixedRateLdpcSystem(
        config,
        max_iterations=int(params["iterations"]),
        algorithm=str(params["algorithm"]),
    )
    fer = system.frame_error_rate(
        float(params["snr_db"]), int(params["frames"]), rng
    )
    return {"config_label": config.label, "fer": fer}


def ldpc_ablation_seed_labels(params, trial) -> tuple:
    """The historical stream labels of the iteration ablation.

    Trial 0 reproduces the pre-registry stream exactly; further trials
    append the trial index so ``--trials N`` measures independent batches
    rather than duplicating the first.
    """
    labels = ("ldpc-ablation", str(params["algorithm"]), int(params["iterations"]))
    return labels if trial == 0 else labels + (trial,)


LDPC_ABLATION_EXPERIMENT = register(
    Experiment(
        name="ldpc-ablation",
        description="E12: LDPC frame error rate vs BP iteration budget and algorithm",
        spec=SweepSpec(
            axes=(
                Axis("algorithm", ("sum-product", "min-sum"), "str"),
                Axis("iterations", DEFAULT_ITERATIONS, "int"),
            ),
            fixed={"rate": "1/2", "modulation": "BPSK", "snr_db": 1.0, "frames": 100},
        ),
        run_point=ldpc_ablation_point,
        columns=(
            Column("config", "config_label"),
            Column("algorithm", "algorithm"),
            Column("iterations", "iterations"),
            Column("SNR(dB)", "snr_db"),
            Column("FER", "fer"),
        ),
        n_trials=1,
        seed_labels=ldpc_ablation_seed_labels,
        smoke={"algorithm": ("min-sum",), "iterations": (5,), "frames": 2},
        plot=PlotSpec(
            x="iterations",
            y="fer",
            series="algorithm",
            x_label="BP iterations",
            y_label="FER",
        ),
    )
)


def ldpc_rate_point(params, rng) -> dict:
    """Registry kernel: achieved rate of one LDPC configuration at one SNR."""
    config = _ldpc_config(params)
    system = FixedRateLdpcSystem(config, max_iterations=int(params["iterations"]))
    fer = system.frame_error_rate(
        float(params["snr_db"]), int(params["frames"]), rng
    )
    return {
        "nominal_rate": system.nominal_rate,
        "fer": fer,
        "achieved_rate": system.nominal_rate * (1.0 - fer),
    }


def ldpc_rate_seed_labels(params, trial) -> tuple:
    """The historical stream labels of the ``repro ldpc`` CLI measurement.

    Trial 0 reproduces the pre-registry stream exactly; further trials
    append the trial index for independent batches.
    """
    labels = ("cli-ldpc", float(params["snr_db"]))
    return labels if trial == 0 else labels + (trial,)


LDPC_RATE_EXPERIMENT = register(
    Experiment(
        name="ldpc-rate",
        description="Achieved rate of one fixed-rate LDPC configuration across SNR",
        spec=SweepSpec(
            axes=(Axis("snr_db", (0.0, 4.0, 8.0, 12.0, 16.0, 20.0), "float"),),
            fixed={"rate": "1/2", "modulation": "QAM-16", "frames": 40, "iterations": 40},
        ),
        run_point=ldpc_rate_point,
        columns=(
            Column("SNR(dB)", "snr_db"),
            Column("nominal rate", "nominal_rate"),
            Column("FER", "fer"),
            Column("achieved rate", "achieved_rate"),
        ),
        n_trials=1,
        seed_labels=ldpc_rate_seed_labels,
        smoke={"snr_db": (8.0,), "modulation": "BPSK", "frames": 2, "iterations": 5},
        plot=PlotSpec(
            x="snr_db", y="achieved_rate", x_label="SNR (dB)", y_label="bits/symbol"
        ),
    )
)


@dataclass(frozen=True)
class LdpcAblationRow:
    """One (config, algorithm, iterations) FER measurement."""

    config_label: str
    algorithm: str
    max_iterations: int
    snr_db: float
    frame_error_rate: float


def ldpc_iteration_experiment(
    config: LdpcConfig | None = None,
    snr_db: float = 1.0,
    iteration_budgets=DEFAULT_ITERATIONS,
    algorithms=("sum-product", "min-sum"),
    n_frames: int = 100,
    seed: int = 20111114,
) -> list[LdpcAblationRow]:
    """Sweep the BP iteration budget for one configuration near its waterfall."""
    if config is None:
        config = LdpcConfig(Fraction(1, 2), "BPSK")
    outcome = run_experiment(
        LDPC_ABLATION_EXPERIMENT,
        overrides={
            "algorithm": tuple(str(a) for a in algorithms),
            "iterations": tuple(int(i) for i in iteration_budgets),
            "rate": str(config.code_rate),
            "modulation": config.modulation,
            "snr_db": float(snr_db),
            "frames": int(n_frames),
        },
        seed=seed,
    )
    return [
        LdpcAblationRow(
            config_label=cell["aggregate"]["config_label"],
            algorithm=str(params["algorithm"]),
            max_iterations=int(params["iterations"]),
            snr_db=float(snr_db),
            frame_error_rate=cell["aggregate"]["fer"],
        )
        for _key, params, cell in outcome.cells()
    ]


def ldpc_iteration_table(rows: list[LdpcAblationRow]) -> str:
    return render_table(
        ["config", "algorithm", "iterations", "SNR(dB)", "FER"],
        [
            (
                row.config_label,
                row.algorithm,
                row.max_iterations,
                row.snr_db,
                row.frame_error_rate,
            )
            for row in rows
        ],
    )
