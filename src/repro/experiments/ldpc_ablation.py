"""Experiment E12: how much the LDPC baseline owes to its decoder budget.

Figure 2 decodes the LDPC baselines with 40 belief-propagation iterations.
This ablation sweeps the iteration budget (and the sum-product vs min-sum
algorithm choice) near each configuration's waterfall, confirming that the
baseline in the reproduction is not handicapped by a weak decoder.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from repro.baselines.ldpc_system import FixedRateLdpcSystem, LdpcConfig
from repro.utils.results import render_table
from repro.utils.rng import spawn_rng

__all__ = ["LdpcAblationRow", "ldpc_iteration_experiment", "ldpc_iteration_table"]

DEFAULT_ITERATIONS = (5, 10, 20, 40, 80)


@dataclass(frozen=True)
class LdpcAblationRow:
    """One (config, algorithm, iterations) FER measurement."""

    config_label: str
    algorithm: str
    max_iterations: int
    snr_db: float
    frame_error_rate: float


def ldpc_iteration_experiment(
    config: LdpcConfig | None = None,
    snr_db: float = 1.0,
    iteration_budgets=DEFAULT_ITERATIONS,
    algorithms=("sum-product", "min-sum"),
    n_frames: int = 100,
    seed: int = 20111114,
) -> list[LdpcAblationRow]:
    """Sweep the BP iteration budget for one configuration near its waterfall."""
    if config is None:
        config = LdpcConfig(Fraction(1, 2), "BPSK")
    rows = []
    for algorithm in algorithms:
        for max_iterations in iteration_budgets:
            system = FixedRateLdpcSystem(
                config, max_iterations=int(max_iterations), algorithm=algorithm
            )
            rng = spawn_rng(seed, "ldpc-ablation", algorithm, max_iterations)
            fer = system.frame_error_rate(snr_db, n_frames, rng)
            rows.append(
                LdpcAblationRow(
                    config_label=config.label,
                    algorithm=algorithm,
                    max_iterations=int(max_iterations),
                    snr_db=snr_db,
                    frame_error_rate=fer,
                )
            )
    return rows


def ldpc_iteration_table(rows: list[LdpcAblationRow]) -> str:
    return render_table(
        ["config", "algorithm", "iterations", "SNR(dB)", "FER"],
        [
            (
                row.config_label,
                row.algorithm,
                row.max_iterations,
                row.snr_db,
                row.frame_error_rate,
            )
            for row in rows
        ],
    )
