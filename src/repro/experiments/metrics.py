"""Small measurement helpers shared by the experiment modules."""

from __future__ import annotations

import numpy as np

__all__ = ["bit_error_rate", "fraction_of_capacity", "crossover_snr"]


def bit_error_rate(reference: np.ndarray, estimate: np.ndarray) -> float:
    """Fraction of differing bits between two equal-length bit vectors."""
    reference = np.asarray(reference, dtype=np.uint8)
    estimate = np.asarray(estimate, dtype=np.uint8)
    if reference.shape != estimate.shape:
        raise ValueError(f"shape mismatch: {reference.shape} vs {estimate.shape}")
    if reference.size == 0:
        raise ValueError("cannot compute BER of empty vectors")
    return float(np.mean(reference != estimate))


def fraction_of_capacity(measured_rate: float, capacity: float) -> float:
    """Measured rate as a fraction of the channel capacity."""
    if capacity <= 0:
        raise ValueError(f"capacity must be positive, got {capacity}")
    return measured_rate / capacity


def crossover_snr(
    snr_values_db: np.ndarray, curve_a: np.ndarray, curve_b: np.ndarray
) -> float | None:
    """SNR (dB) at which curve A stops exceeding curve B, by linear interpolation.

    Used for the E2 claim ("the rateless nature of spinal code allows it to
    outperform any rated code of block length 24 for all SNR <= 25 dB"):
    returns the last SNR at which ``curve_a >= curve_b`` holds before a sign
    change, ``None`` if A never falls below B on the grid, and the first grid
    point if A is below B everywhere.
    """
    snr_values_db = np.asarray(snr_values_db, dtype=np.float64)
    curve_a = np.asarray(curve_a, dtype=np.float64)
    curve_b = np.asarray(curve_b, dtype=np.float64)
    if not (snr_values_db.shape == curve_a.shape == curve_b.shape):
        raise ValueError("all inputs must share the same shape")
    difference = curve_a - curve_b
    if np.all(difference >= 0):
        return None
    if difference[0] < 0:
        return float(snr_values_db[0])
    sign_change = np.where((difference[:-1] >= 0) & (difference[1:] < 0))[0]
    if sign_change.size == 0:
        return None
    i = int(sign_change[-1])
    x0, x1 = snr_values_db[i], snr_values_db[i + 1]
    y0, y1 = difference[i], difference[i + 1]
    if y0 == y1:
        return float(x0)
    return float(x0 - y0 * (x1 - x0) / (y1 - y0))
