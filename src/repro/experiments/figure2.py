"""Figure 2: rate versus SNR for spinal codes, bounds, and LDPC baselines.

This module regenerates every curve of the paper's only quantitative figure:

* the Shannon capacity bound ``log2(1 + SNR)``;
* the finite-blocklength ("fixed-block approx.") bound for length-24 codes
  at error probability 1e-4;
* the spinal code with ``m = 24``, ``k = 8``, ``c = 10``, ``B = 16`` and a
  14-bit receiver ADC;
* the eight fixed-rate LDPC configurations (648-bit wifi-like codes over
  BPSK/QAM-4/QAM-16/QAM-64 with 40-iteration BP decoding).

`figure2_table` assembles everything into the text table printed by
``benchmarks/bench_figure2_*.py`` and consumed by EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.baselines.ldpc_system import FIGURE2_LDPC_CONFIGS, FixedRateLdpcSystem, LdpcConfig
from repro.experiments.metrics import crossover_snr
from repro.experiments.registry import Experiment, register, run_experiment
from repro.experiments.runner import (
    SPINAL_SMOKE,
    SpinalRunConfig,
    awgn_seed_labels,
    awgn_trial,
    is_engine_compatible,
    rate_cell_aggregate,
    run_spinal_curve,
    spinal_fixed,
    spinal_overrides,
)
from repro.experiments.spec import Axis, Column, PlotSpec, SweepSpec
from repro.theory.capacity import awgn_capacity_db
from repro.theory.finite_blocklength import ppv_fixed_block_bound_db
from repro.utils.results import RateMeasurement, SweepResult, render_table
from repro.utils.rng import spawn_rng

__all__ = [
    "DEFAULT_SNR_GRID_DB",
    "Figure2Data",
    "shannon_curve",
    "fixed_block_bound_curve",
    "spinal_figure2_curve",
    "ldpc_figure2_curves",
    "figure2_table",
    "FIGURE2_EXPERIMENT",
]

#: SNR grid of the paper's figure: -10 dB to 40 dB.
DEFAULT_SNR_GRID_DB: tuple[float, ...] = tuple(float(s) for s in range(-10, 42, 2))


def figure2_point(params, rng) -> dict:
    """Registry kernel: one Figure-2 spinal trial plus the bound curves."""
    metrics = awgn_trial(params, rng)
    metrics["shannon"] = metrics["capacity"]
    metrics["fixed_block"] = ppv_fixed_block_bound_db(
        float(params["snr_db"]), block_length=int(params["payload_bits"])
    )
    return metrics


FIGURE2_EXPERIMENT = register(
    Experiment(
        name="figure2",
        description="Figure 2 core: spinal rate vs SNR with Shannon and fixed-block bounds",
        spec=SweepSpec(
            axes=(Axis("snr_db", DEFAULT_SNR_GRID_DB, "float"),),
            fixed=spinal_fixed(),
        ),
        run_point=figure2_point,
        columns=(
            Column("SNR(dB)", "snr_db"),
            Column("Shannon", "shannon"),
            Column("FixedBlk", "fixed_block"),
            Column("Spinal", "rate"),
            Column("stderr", "rate_stderr"),
        ),
        n_trials=30,
        aggregate=rate_cell_aggregate,
        seed_labels=awgn_seed_labels,
        smoke={**SPINAL_SMOKE, "snr_db": (0.0, 10.0)},
        plot=PlotSpec(x="snr_db", y="rate", x_label="SNR (dB)", y_label="bits/symbol"),
    )
)


def shannon_curve(snr_values_db) -> SweepResult:
    """The "Shannon bound" curve of Figure 2."""
    sweep = SweepResult(name="Shannon bound")
    for snr_db in snr_values_db:
        point = RateMeasurement(snr_db=float(snr_db))
        point.add_trial(awgn_capacity_db(float(snr_db)), symbols=0, ok=True)
        sweep.add_point(point)
    return sweep


def fixed_block_bound_curve(
    snr_values_db, block_length: int = 24, error_probability: float = 1e-4
) -> SweepResult:
    """The dashed "fixed-block approx. bound (len=24, err.prob=1e-4)" curve."""
    sweep = SweepResult(
        name=f"fixed-block bound (len={block_length}, eps={error_probability:g})"
    )
    for snr_db in snr_values_db:
        point = RateMeasurement(snr_db=float(snr_db))
        point.add_trial(
            ppv_fixed_block_bound_db(float(snr_db), block_length, error_probability),
            symbols=0,
            ok=True,
        )
        sweep.add_point(point)
    return sweep


def spinal_figure2_curve(
    snr_values_db=DEFAULT_SNR_GRID_DB,
    config: SpinalRunConfig | None = None,
) -> SweepResult:
    """The measured spinal curve with the paper's Figure 2 parameters.

    Routed through the experiment registry (cell *and* trial process
    fan-out, identical numbers to the direct runner); configs using knobs
    the declarative spec does not carry fall back to
    :func:`run_spinal_curve`.
    """
    if config is None:
        config = SpinalRunConfig()
    name = "Spinal m=24 B=16"
    if not is_engine_compatible(config):
        return run_spinal_curve(config, snr_values_db, name=name)
    outcome = run_experiment(
        FIGURE2_EXPERIMENT,
        overrides={
            **spinal_overrides(config),
            "snr_db": tuple(float(s) for s in snr_values_db),
        },
        n_trials=config.n_trials,
        seed=config.seed,
        n_workers=config.n_workers,
    )
    sweep = SweepResult(name=name, metadata={"config": config})
    for _key, params, cell in outcome.successful_cells():
        point = RateMeasurement(snr_db=float(params["snr_db"]))
        for trial in cell["trials"]:
            point.add_trial(trial["rate"], trial["symbols"], trial["ok"])
        sweep.add_point(point)
    return sweep


def ldpc_figure2_curves(
    snr_values_db=DEFAULT_SNR_GRID_DB,
    configs: tuple[LdpcConfig, ...] = FIGURE2_LDPC_CONFIGS,
    n_frames: int = 40,
    max_iterations: int = 40,
    algorithm: str = "sum-product",
    seed: int = 20111114,
) -> dict[str, SweepResult]:
    """Measured achieved-rate curves for the eight LDPC baseline configurations."""
    curves: dict[str, SweepResult] = {}
    for config in configs:
        system = FixedRateLdpcSystem(
            config, max_iterations=max_iterations, algorithm=algorithm
        )
        sweep = SweepResult(name=config.label, metadata={"nominal": system.nominal_rate})
        for snr_db in snr_values_db:
            rng = spawn_rng(seed, "ldpc", config.label, snr_db)
            successes = system.transmit_frames(float(snr_db), n_frames, rng)
            point = RateMeasurement(snr_db=float(snr_db))
            for ok in successes:
                point.add_trial(
                    system.nominal_rate if ok else 0.0,
                    symbols=system.symbols_per_frame,
                    ok=bool(ok),
                )
            sweep.add_point(point)
        curves[config.label] = sweep
    return curves


@dataclass
class Figure2Data:
    """All curves of Figure 2 plus derived headline numbers."""

    snr_values_db: list[float]
    shannon: SweepResult
    fixed_block_bound: SweepResult
    spinal: SweepResult
    ldpc: dict[str, SweepResult] = field(default_factory=dict)

    def spinal_fraction_of_capacity(self) -> np.ndarray:
        """Per-SNR ratio of the spinal rate to the Shannon bound."""
        spinal = np.array(self.spinal.mean_rates())
        capacity = np.array(self.shannon.mean_rates())
        return spinal / np.maximum(capacity, 1e-12)

    def spinal_beats_fixed_block_until_db(self) -> float | None:
        """E2: the SNR up to which the spinal code beats the length-24 bound."""
        return crossover_snr(
            np.array(self.snr_values_db),
            np.array(self.spinal.mean_rates()),
            np.array(self.fixed_block_bound.mean_rates()),
        )

    def as_table(self) -> str:
        """Render every curve on the shared SNR grid as a text table."""
        headers = ["SNR(dB)", "Shannon", "FixedBlk", "Spinal"] + list(self.ldpc)
        rows = []
        for i, snr_db in enumerate(self.snr_values_db):
            row = [
                snr_db,
                self.shannon.points[i].mean_rate,
                self.fixed_block_bound.points[i].mean_rate,
                self.spinal.points[i].mean_rate,
            ]
            row.extend(self.ldpc[name].points[i].mean_rate for name in self.ldpc)
            rows.append(row)
        return render_table(headers, rows)


def figure2_table(
    snr_values_db=DEFAULT_SNR_GRID_DB,
    spinal_config: SpinalRunConfig | None = None,
    ldpc_frames: int = 40,
    include_ldpc: bool = True,
    ldpc_algorithm: str = "sum-product",
) -> Figure2Data:
    """Regenerate the complete Figure 2 data set.

    ``include_ldpc=False`` skips the (comparatively slow) LDPC Monte-Carlo,
    which is useful for quick spinal-only runs; the benchmark harness splits
    the two across separate benchmark functions for the same reason.
    """
    snr_list = [float(s) for s in snr_values_db]
    data = Figure2Data(
        snr_values_db=snr_list,
        shannon=shannon_curve(snr_list),
        fixed_block_bound=fixed_block_bound_curve(snr_list),
        spinal=spinal_figure2_curve(snr_list, config=spinal_config),
    )
    if include_ldpc:
        data.ldpc = ldpc_figure2_curves(
            snr_list, n_frames=ldpc_frames, algorithm=ldpc_algorithm
        )
    return data
