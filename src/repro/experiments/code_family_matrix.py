"""Experiment E18: the cross-family version of the paper's headline comparison.

Figure 2 compares the spinal code against fixed-rate baselines on a single
link; the ``repro.phy`` redesign makes the comparison three-dimensional:
every registered :class:`~repro.phy.protocol.RatelessCode` family runs in
every network scenario — because they all speak the same session protocol —
and this sweep measures

    code family  ×  scenario {single-hop, 3-hop relay, 8-user cell}  ×  SNR
                 →  goodput, delivered fraction, symbol efficiency.

Scenarios reuse the real simulators, not models: the single hop is the PR-2
sliding-window transport, the relay is the decode-and-forward chain (each
hop an independent code instance from a hop-derived seed), and the cell is
the PR-4 shared-medium MAC with round-robin grants.  Per-family channels
are SNR-calibrated to the code's alphabet (complex AWGN for symbol-domain
codes, a BPSK-hard-decision BSC for bit-domain codes), so the x-axis means
the same physical channel for every curve.

Per-packet symbol budgets scale with the family's message size
(``budget_factor`` ideal-payload multiples), so fixed-rate families get the
same multiple of headroom for retransmissions that rateless families get
for extra passes.

Every random stream derives from the injected base seed (``max_trials=1``),
so the sweep is deterministic per cell and worker-count invariant — the CI
``codec-matrix-smoke`` step asserts a re-run resumes 100% from cache.
"""

from __future__ import annotations

from repro.experiments.registry import Experiment, register
from repro.experiments.spec import Axis, Column, PlotSpec, SweepSpec
from repro.link.topology import build_codec_relay_sessions, simulate_relay_transport
from repro.link.transport import TransportConfig, run_link_transport
from repro.mac.cell import CellUser, RatelessLink, simulate_cell, spread_snrs
from repro.phy.families import CODE_FAMILY_NAMES, make_code, make_codec_session
from repro.utils.bitops import random_message_bits
from repro.utils.rng import derive_seed, spawn_rng

__all__ = [
    "MATRIX_SCENARIOS",
    "code_family_matrix_point",
    "matrix_budget",
    "CODE_FAMILY_MATRIX_EXPERIMENT",
]

#: The three network scenarios every family is measured in.
MATRIX_SCENARIOS: tuple[str, ...] = ("single-hop", "relay-3", "cell-8")

_RELAY_HOPS = 3
_CELL_USERS = 8


def matrix_budget(budget_factor: float, payload_bits: int) -> int:
    """Per-packet symbol budget: the same payload multiple for every family."""
    return int(budget_factor * payload_bits)


def _matrix_payloads(seed: int, family: str, label: object, count: int, bits: int):
    return [
        random_message_bits(bits, spawn_rng(seed, "matrix-payload", family, label, i))
        for i in range(count)
    ]


def _transport_metrics(n_packets, delivered, goodput, needed, spent, makespan) -> dict:
    spent = float(spent)
    return {
        "goodput": float(goodput),
        "delivered_fraction": delivered / n_packets if n_packets else 0.0,
        "symbol_efficiency": float(needed) / spent if spent else 1.0,
        "symbols_sent": int(spent),
        "makespan": int(makespan),
        "n_packets": int(n_packets),
    }


def _run_single_hop(params, family, snr_db, smoke, max_symbols, seed) -> dict:
    session = make_codec_session(
        family,
        snr_db,
        seed=derive_seed(seed, "matrix-code", family, snr_db),
        smoke=smoke,
        max_symbols=max_symbols,
    )
    payloads = _matrix_payloads(
        seed, family, "single-hop", int(params["packets"]), session.payload_bits
    )
    result = run_link_transport(
        session,
        payloads,
        TransportConfig(seed=derive_seed(seed, "matrix-transport", family, snr_db)),
    )
    return _transport_metrics(
        result.n_packets,
        result.n_delivered,
        result.goodput_bits_per_symbol_time,
        result.symbols_needed.sum(),
        result.symbols_spent.sum(),
        result.makespan,
    )


def _run_relay(params, family, snr_db, smoke, max_symbols, seed) -> dict:
    sessions = build_codec_relay_sessions(
        family,
        [snr_db] * _RELAY_HOPS,
        seed=derive_seed(seed, "matrix-code", family, snr_db),
        smoke=smoke,
        max_symbols=max_symbols,
    )
    payloads = _matrix_payloads(
        seed, family, "relay", int(params["packets"]), sessions[0].payload_bits
    )
    result = simulate_relay_transport(
        sessions,
        payloads,
        TransportConfig(seed=derive_seed(seed, "matrix-transport", family, snr_db)),
    )
    needed = sum(float(hop.symbols_needed.sum()) for hop in result.hops)
    spent = sum(float(hop.symbols_spent.sum()) for hop in result.hops)
    return _transport_metrics(
        result.n_packets,
        result.n_delivered,
        result.end_to_end_goodput,
        needed,
        spent,
        result.makespan,
    )


def _run_cell(params, family, snr_db, smoke, max_symbols, seed) -> dict:
    snrs = spread_snrs(snr_db, float(params["cell_snr_spread_db"]), _CELL_USERS)
    packets_per_user = int(params["cell_packets_per_user"])
    users = []
    for user, user_snr in enumerate(snrs):
        session = make_codec_session(
            family,
            user_snr,
            seed=derive_seed(seed, "matrix-user", family, snr_db, user),
            smoke=smoke,
            max_symbols=max_symbols,
        )
        payloads = _matrix_payloads(
            seed, family, ("cell", user), packets_per_user, session.payload_bits
        )
        users.append(
            CellUser(
                RatelessLink(session),
                payloads,
                csi=lambda now, snr=float(user_snr): snr,
            )
        )
    result = simulate_cell(users, "round-robin", seed=derive_seed(seed, "matrix-cell"))
    needed = sum(p.symbols_needed for p in result.packets)
    spent = sum(p.symbols_sent for p in result.packets)
    return _transport_metrics(
        result.n_packets,
        result.n_delivered,
        result.aggregate_goodput,
        needed,
        spent,
        result.makespan,
    )


_SCENARIO_RUNNERS = {
    "single-hop": _run_single_hop,
    "relay-3": _run_relay,
    "cell-8": _run_cell,
}


def code_family_matrix_point(params, rng) -> dict:
    """Registry kernel: one (code, scenario, SNR) network simulation.

    Deterministic given the parameters — every stream derives from the
    injected base seed, so the engine-provided ``rng`` is unused.
    """
    family = str(params["code"])
    scenario = str(params["scenario"])
    snr_db = float(params["snr_db"])
    seed = int(params["seed"])
    smoke = str(params["scale"]) == "smoke"
    probe = make_code(
        family, seed=derive_seed(seed, "matrix-code", family, snr_db), snr_db=snr_db, smoke=smoke
    )
    max_symbols = matrix_budget(float(params["budget_factor"]), probe.info.payload_bits)
    metrics = _SCENARIO_RUNNERS[scenario](
        params, family, snr_db, smoke, max_symbols, seed
    )
    metrics["payload_bits"] = probe.info.payload_bits
    metrics["max_symbols"] = max_symbols
    return metrics


CODE_FAMILY_MATRIX_EXPERIMENT = register(
    Experiment(
        name="code-family-matrix",
        description=(
            "E18: every code family × {single-hop, 3-hop relay, 8-user cell} × SNR "
            "— goodput/overhead through the code-agnostic PHY session API"
        ),
        spec=SweepSpec(
            axes=(
                Axis("code", CODE_FAMILY_NAMES, "str"),
                Axis("scenario", MATRIX_SCENARIOS, "str"),
                Axis("snr_db", (0.0, 4.0, 8.0, 12.0), "float"),
            ),
            fixed={
                "scale": "full",
                "packets": 6,
                "cell_packets_per_user": 2,
                "cell_snr_spread_db": 6.0,
                "budget_factor": 8.0,
            },
        ),
        run_point=code_family_matrix_point,
        columns=(
            Column("code", "code"),
            Column("scenario", "scenario"),
            Column("SNR(dB)", "snr_db"),
            Column("goodput (b/sym-t)", "goodput"),
            Column("delivered", "delivered_fraction"),
            Column("efficiency", "symbol_efficiency"),
            Column("symbols", "symbols_sent"),
        ),
        n_trials=1,
        max_trials=1,  # every stream derives from the base seed
        smoke={
            "scale": "smoke",
            "packets": 2,
            "cell_packets_per_user": 1,
            "snr_db": (8.0,),
        },
        plot=PlotSpec(
            x="snr_db",
            y="goodput",
            series="code",
            x_label="SNR (dB)",
            y_label="goodput (bits/symbol-time)",
        ),
    )
)
