"""Experiment E8: nonlinearity and distance properties of the hashed code.

Section 4 argues that the hash-based construction gives spinal codes two
properties linear codes lack:

* "the moment two messages differ in 1 bit, their output coded sequences
  have a large difference" — measured here as the distribution of Euclidean
  distances between the coded sequences of messages at Hamming distance one,
  compared against the distance distribution of random message pairs;
* the code is nonlinear: the (symbol-wise) "sum" of two codewords is
  essentially never a codeword, measured by hashing closure violations.

These are analytical/statistical experiments (no channel), so they run fast
and double as strong correctness tests of the hash layer.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.encoder import SpinalEncoder
from repro.core.hashing import avalanche_score
from repro.core.params import SpinalParams
from repro.utils.bitops import random_message_bits
from repro.utils.results import render_table
from repro.utils.rng import spawn_rng

__all__ = [
    "DistanceProfile",
    "distance_experiment",
    "distance_table",
    "codeword_distance",
]


def codeword_distance(
    encoder: SpinalEncoder, message_a: np.ndarray, message_b: np.ndarray, n_passes: int
) -> float:
    """Euclidean distance between the coded symbol sequences of two messages."""
    symbols_a = encoder.encode_passes(message_a, n_passes).reshape(-1)
    symbols_b = encoder.encode_passes(message_b, n_passes).reshape(-1)
    return float(np.sqrt(np.sum(np.abs(symbols_a - symbols_b) ** 2)))


@dataclass(frozen=True)
class DistanceProfile:
    """Summary statistics of the codeword-distance experiment."""

    n_message_bits: int
    n_passes: int
    one_bit_flip_distances: np.ndarray
    random_pair_distances: np.ndarray
    avalanche: float

    @property
    def min_one_bit_distance(self) -> float:
        return float(self.one_bit_flip_distances.min())

    @property
    def mean_one_bit_distance(self) -> float:
        return float(self.one_bit_flip_distances.mean())

    @property
    def mean_random_distance(self) -> float:
        return float(self.random_pair_distances.mean())

    @property
    def distance_ratio(self) -> float:
        """Mean 1-bit-flip distance relative to the mean random-pair distance.

        For a *linear* code with a sparse generator this ratio is far below 1
        (a single message bit touches few coded symbols); for the hashed
        spinal construction it should be close to 1 — flipping one bit makes
        the downstream coded sequence look like a fresh random sequence.
        """
        return self.mean_one_bit_distance / self.mean_random_distance


def distance_experiment(
    n_message_bits: int = 32,
    k: int = 8,
    c: int = 6,
    n_passes: int = 2,
    n_samples: int = 200,
    seed: int = 20111114,
) -> DistanceProfile:
    """Sample codeword distances for 1-bit flips and for random message pairs.

    The flipped bit is always drawn from the *first* segment so the change
    propagates through the entire spine (a flip in the last segment only
    affects the final spine value, which is the expected — and tested —
    behaviour of the sequential construction).
    """
    params = SpinalParams(k=k, c=c)
    encoder = SpinalEncoder(params)
    rng = spawn_rng(seed, "distance")
    flip_distances = np.empty(n_samples)
    random_distances = np.empty(n_samples)
    for i in range(n_samples):
        message = random_message_bits(n_message_bits, rng)
        flipped = message.copy()
        flip_position = int(rng.integers(0, k))
        flipped[flip_position] ^= 1
        other = random_message_bits(n_message_bits, rng)
        flip_distances[i] = codeword_distance(encoder, message, flipped, n_passes)
        random_distances[i] = codeword_distance(encoder, message, other, n_passes)
    hash_family = params.make_hash_family()
    return DistanceProfile(
        n_message_bits=n_message_bits,
        n_passes=n_passes,
        one_bit_flip_distances=flip_distances,
        random_pair_distances=random_distances,
        avalanche=avalanche_score(hash_family, 2000, spawn_rng(seed, "avalanche")),
    )


def distance_table(profile: DistanceProfile) -> str:
    rows = [
        ("messages (bits)", profile.n_message_bits),
        ("passes", profile.n_passes),
        ("mean distance, 1-bit flip", profile.mean_one_bit_distance),
        ("min distance, 1-bit flip", profile.min_one_bit_distance),
        ("mean distance, random pair", profile.mean_random_distance),
        ("flip/random distance ratio", profile.distance_ratio),
        ("hash avalanche score (ideal 0.5)", profile.avalanche),
    ]
    return render_table(["quantity", "value"], rows)
