"""Experiment E8: nonlinearity and distance properties of the hashed code.

Section 4 argues that the hash-based construction gives spinal codes two
properties linear codes lack:

* "the moment two messages differ in 1 bit, their output coded sequences
  have a large difference" — measured here as the distribution of Euclidean
  distances between the coded sequences of messages at Hamming distance one,
  compared against the distance distribution of random message pairs;
* the code is nonlinear: the (symbol-wise) "sum" of two codewords is
  essentially never a codeword, measured by hashing closure violations.

These are analytical/statistical experiments (no channel), so they run fast
and double as strong correctness tests of the hash layer.

Registered as ``distance`` (a single-cell experiment — no swept axes);
``distance_experiment`` is a thin wrapper over the registry engine that
rebuilds the historical :class:`DistanceProfile` from the persisted cell.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.encoder import SpinalEncoder
from repro.core.hashing import avalanche_score
from repro.core.params import SpinalParams
from repro.experiments.registry import Experiment, register, run_experiment
from repro.experiments.spec import Column, SweepSpec
from repro.utils.bitops import random_message_bits
from repro.utils.results import render_table
from repro.utils.rng import spawn_rng

__all__ = [
    "DistanceProfile",
    "distance_experiment",
    "distance_table",
    "codeword_distance",
    "DISTANCE_EXPERIMENT",
]


def codeword_distance(
    encoder: SpinalEncoder, message_a: np.ndarray, message_b: np.ndarray, n_passes: int
) -> float:
    """Euclidean distance between the coded symbol sequences of two messages."""
    symbols_a = encoder.encode_passes(message_a, n_passes).reshape(-1)
    symbols_b = encoder.encode_passes(message_b, n_passes).reshape(-1)
    return float(np.sqrt(np.sum(np.abs(symbols_a - symbols_b) ** 2)))


def distance_point(params, rng) -> dict:
    """Registry kernel: the full distance/avalanche measurement, one shot.

    The sampling and avalanche streams are spawned from the base seed with
    the historical labels (``"distance"`` / ``"avalanche"``) so the numbers
    are bit-identical to the pre-registry experiment; the engine-provided
    ``rng`` is deliberately unused.
    """
    n_message_bits = int(params["n_message_bits"])
    k = int(params["k"])
    n_passes = int(params["n_passes"])
    n_samples = int(params["n_samples"])
    seed = int(params["seed"])
    spinal = SpinalParams(k=k, c=int(params["c"]))
    encoder = SpinalEncoder(spinal)
    sample_rng = spawn_rng(seed, "distance")
    flip_distances = np.empty(n_samples)
    random_distances = np.empty(n_samples)
    for i in range(n_samples):
        message = random_message_bits(n_message_bits, sample_rng)
        flipped = message.copy()
        # Flip in the first segment so the change propagates down the spine.
        flip_position = int(sample_rng.integers(0, k))
        flipped[flip_position] ^= 1
        other = random_message_bits(n_message_bits, sample_rng)
        flip_distances[i] = codeword_distance(encoder, message, flipped, n_passes)
        random_distances[i] = codeword_distance(encoder, message, other, n_passes)
    hash_family = spinal.make_hash_family()
    mean_flip = float(flip_distances.mean())
    mean_random = float(random_distances.mean())
    return {
        "mean_one_bit_distance": mean_flip,
        "min_one_bit_distance": float(flip_distances.min()),
        "mean_random_distance": mean_random,
        "distance_ratio": mean_flip / mean_random,
        "avalanche": avalanche_score(hash_family, 2000, spawn_rng(seed, "avalanche")),
        "one_bit_flip_distances": flip_distances,
        "random_pair_distances": random_distances,
    }


DISTANCE_EXPERIMENT = register(
    Experiment(
        name="distance",
        description="E8: codeword distance of 1-bit flips vs random pairs + hash avalanche",
        spec=SweepSpec(
            axes=(),
            fixed={
                "n_message_bits": 32,
                "k": 8,
                "c": 6,
                "n_passes": 2,
                "n_samples": 200,
            },
        ),
        run_point=distance_point,
        columns=(
            Column("messages (bits)", "n_message_bits"),
            Column("passes", "n_passes"),
            Column("mean distance, 1-bit flip", "mean_one_bit_distance"),
            Column("min distance, 1-bit flip", "min_one_bit_distance"),
            Column("mean distance, random pair", "mean_random_distance"),
            Column("flip/random distance ratio", "distance_ratio"),
            Column("hash avalanche (ideal 0.5)", "avalanche"),
        ),
        n_trials=1,
        max_trials=1,  # the kernel derives its streams from the base seed
        smoke={"n_samples": 20, "n_message_bits": 16, "k": 4},
    )
)


@dataclass(frozen=True)
class DistanceProfile:
    """Summary statistics of the codeword-distance experiment."""

    n_message_bits: int
    n_passes: int
    one_bit_flip_distances: np.ndarray
    random_pair_distances: np.ndarray
    avalanche: float

    @property
    def min_one_bit_distance(self) -> float:
        return float(self.one_bit_flip_distances.min())

    @property
    def mean_one_bit_distance(self) -> float:
        return float(self.one_bit_flip_distances.mean())

    @property
    def mean_random_distance(self) -> float:
        return float(self.random_pair_distances.mean())

    @property
    def distance_ratio(self) -> float:
        """Mean 1-bit-flip distance relative to the mean random-pair distance.

        For a *linear* code with a sparse generator this ratio is far below 1
        (a single message bit touches few coded symbols); for the hashed
        spinal construction it should be close to 1 — flipping one bit makes
        the downstream coded sequence look like a fresh random sequence.
        """
        return self.mean_one_bit_distance / self.mean_random_distance


def distance_experiment(
    n_message_bits: int = 32,
    k: int = 8,
    c: int = 6,
    n_passes: int = 2,
    n_samples: int = 200,
    seed: int = 20111114,
) -> DistanceProfile:
    """Sample codeword distances for 1-bit flips and for random message pairs."""
    outcome = run_experiment(
        DISTANCE_EXPERIMENT,
        overrides={
            "n_message_bits": int(n_message_bits),
            "k": int(k),
            "c": int(c),
            "n_passes": int(n_passes),
            "n_samples": int(n_samples),
        },
        seed=seed,
    )
    (_key, _params, cell), = outcome.successful_cells()
    trial = cell["trials"][0]
    return DistanceProfile(
        n_message_bits=int(n_message_bits),
        n_passes=int(n_passes),
        one_bit_flip_distances=np.asarray(trial["one_bit_flip_distances"]),
        random_pair_distances=np.asarray(trial["random_pair_distances"]),
        avalanche=trial["avalanche"],
    )


def distance_table(profile: DistanceProfile) -> str:
    rows = [
        ("messages (bits)", profile.n_message_bits),
        ("passes", profile.n_passes),
        ("mean distance, 1-bit flip", profile.mean_one_bit_distance),
        ("min distance, 1-bit flip", profile.min_one_bit_distance),
        ("mean distance, random pair", profile.mean_random_distance),
        ("flip/random distance ratio", profile.distance_ratio),
        ("hash avalanche score (ideal 0.5)", profile.avalanche),
    ]
    return render_table(["quantity", "value"], rows)
