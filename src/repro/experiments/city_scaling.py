"""Experiment E19: city-scale network goodput vs user density × scheduler.

The multi-cell simulator (:mod:`repro.net`) puts ``n_users`` mobile uplinks
into a grid of base stations under one symbol-time clock: per-user SINR
(serving-cell path loss over interfering cells' live transmit activity),
deterministic random-walk mobility, and hysteresis handoff that migrates
queue and in-flight state between cells.  This sweep scales user density
across MAC disciplines and code families at both fidelity tiers:

* ``exact`` — every block runs the real encoder/channel/decoder;
* ``flow``  — packets sample symbols-to-decode distributions calibrated
  off the bit-exact codec (same MAC/mobility/handoff machinery, city-scale
  throughput).

Reading the table: aggregate goodput and Jain fairness answer the paper's
network-level question (does rateless self-adaptation keep cell-edge users
served?), while the handoff columns characterize the mobility regime the
answer was measured under.  The two tiers should agree to within the
calibrated error bound pinned in ``tests/test_net.py``.

Every random stream derives from the injected base seed, so cells are
deterministic and worker-count invariant (``max_trials = 1``).
"""

from __future__ import annotations

from repro.experiments.registry import Experiment, register
from repro.experiments.spec import Axis, Column, PlotSpec, SweepSpec
from repro.mac.schedulers import SCHEDULER_NAMES
from repro.net import NetworkConfig, simulate_network

__all__ = [
    "city_config_from_params",
    "city_scaling_point",
    "CITY_SCALING_EXPERIMENT",
]


def city_config_from_params(params) -> NetworkConfig:
    """Translate a registry parameter point into a :class:`NetworkConfig`."""
    return NetworkConfig(
        n_cells=int(params["n_cells"]),
        n_users=int(params["n_users"]),
        packets_per_user=int(params["packets_per_user"]),
        scheduler=str(params["scheduler"]),
        code=str(params["code"]),
        tier=str(params["tier"]),
        seed=int(params["seed"]),
        smoke_codes=True,
        max_symbols=int(params["max_symbols"]),
        cell_radius=float(params["cell_radius"]),
        reference_snr_db=float(params["reference_snr_db"]),
        epoch_symbols=int(params["epoch_symbols"]),
        mobility_step=float(params["mobility_step"]),
        calibration_samples=int(params["calibration_samples"]),
        calibration_grid_points=int(params["calibration_grid_points"]),
    )


def city_scaling_point(params, rng) -> dict:
    """Registry kernel: one (n_users, scheduler, code, tier) city simulation.

    Deterministic given the parameters — every stream derives from the
    injected base seed, so the engine-provided ``rng`` is unused.
    """
    return simulate_network(city_config_from_params(params)).summary()


CITY_SCALING_EXPERIMENT = register(
    Experiment(
        name="city-scaling",
        description=(
            "E19: multi-cell SINR network goodput/fairness/handoffs vs "
            "user density × scheduler × code family × fidelity tier"
        ),
        spec=SweepSpec(
            axes=(
                Axis("n_users", (4, 8, 16), "int"),
                Axis("scheduler", SCHEDULER_NAMES, "str"),
                Axis("code", ("spinal", "lt"), "str"),
                Axis("tier", ("exact", "flow"), "str"),
            ),
            fixed={
                "n_cells": 4,
                "packets_per_user": 2,
                "max_symbols": 512,
                "cell_radius": 150.0,
                "reference_snr_db": 18.0,
                "epoch_symbols": 128,
                "mobility_step": 60.0,
                "calibration_samples": 32,
                "calibration_grid_points": 9,
            },
        ),
        run_point=city_scaling_point,
        columns=(
            Column("users", "n_users"),
            Column("scheduler", "scheduler"),
            Column("code", "code"),
            Column("tier", "tier"),
            Column("goodput (b/sym-t)", "aggregate_goodput"),
            Column("fairness", "jain_fairness"),
            Column("delivered", "n_delivered"),
            Column("handoffs", "n_handoffs"),
            Column("handoffs/ksym", "handoff_rate_per_kilosymbol"),
            Column("makespan", "makespan"),
        ),
        n_trials=1,
        max_trials=1,  # the simulation derives every stream from the base seed
        smoke={
            "n_users": (2, 4),
            "scheduler": ("round-robin", "max-snr"),
            "code": ("spinal",),
            "tier": ("exact", "flow"),
            "packets_per_user": 2,
            "max_symbols": 512,
            "calibration_samples": 12,
            "calibration_grid_points": 5,
        },
        plot=PlotSpec(
            x="n_users",
            y="aggregate_goodput",
            series="scheduler",
            x_label="users in the city",
            y_label="aggregate goodput",
        ),
    )
)
