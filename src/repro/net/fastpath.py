"""Flow-level fidelity tier: symbol-count distributions instead of decoding.

The bit-exact network tier runs a real encoder, channel, and decoder for
every block of every packet — perfect fidelity, but a 1k-user city spends
almost all of its time inside decode kernels.  This module is the fast
tier of the fidelity hierarchy: *measure* the distribution of
"symbols needed to decode" per SNR off the bit-exact codec once
(:func:`calibrate_symbol_model`), then replay packets by sampling that
distribution (:class:`FlowLink`).  The MAC/event machinery — grants, the
shared medium, interference activity, mobility, handoff — is reused
unchanged; only the PHY under each grant is replaced by a draw.

Determinism discipline: a flow packet consumes exactly one value from its
private per-``(user, packet)`` stream (the requirement draw at ``open``),
so results are independent of grant interleaving and worker count, exactly
like the bit-exact tier.  Calibration itself is a pure function of its
seed and is memoized per process.

Fidelity contract: the flow tier is *calibrated*, not exact — tests pin its
relative aggregate-goodput error against the bit-exact network on small
configs, and the calibration is re-run whenever codec behavior changes
(it is derived, not checked in).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.phy.families import make_codec_session
from repro.utils.bitops import random_message_bits
from repro.utils.rng import spawn_rng

__all__ = [
    "FlowLink",
    "FlowTransmission",
    "SymbolCountModel",
    "calibrate_symbol_model",
    "cached_symbol_model",
]


@dataclass(frozen=True)
class SymbolCountModel:
    """Empirical symbols-to-decode distributions on an SNR grid.

    ``samples[g]`` holds, for grid point ``g``, one entry per calibration
    run: the symbols the codec needed to decode, or ``-1`` if the run
    exhausted its budget undecoded.  ``block_symbols`` is the measured mean
    block (scheduling quantum) size, so the flow tier occupies the medium
    in realistically sized grants.
    """

    family: str
    payload_bits: int
    max_symbols: int
    block_symbols: int
    snr_grid_db: tuple[float, ...]
    samples: tuple[tuple[int, ...], ...]

    def __post_init__(self) -> None:
        if len(self.snr_grid_db) != len(self.samples) or not self.samples:
            raise ValueError("need one non-empty sample row per grid SNR")
        if any(not row for row in self.samples):
            raise ValueError("every grid point needs at least one sample")
        if any(
            a >= b for a, b in zip(self.snr_grid_db, self.snr_grid_db[1:])
        ):
            raise ValueError("snr_grid_db must be strictly increasing")
        if self.block_symbols < 1:
            raise ValueError("block_symbols must be at least 1")

    def grid_index(self, snr_db: float) -> int:
        """Nearest calibrated grid point (ties → lower SNR)."""
        return int(np.argmin(np.abs(np.asarray(self.snr_grid_db) - float(snr_db))))

    def sample_requirement(self, snr_db: float, rng: np.random.Generator) -> int:
        """Draw a symbols-to-decode requirement for one packet at ``snr_db``.

        Between grid points the draw interpolates *stochastically*: the
        neighbor is chosen with probability proportional to SNR proximity,
        which halves the bias of nearest-point quantization without
        assuming any parametric SNR→symbols law.  Exactly two RNG values
        are consumed on every call, whatever the SNR, so per-packet streams
        stay independent of the operating point.

        A calibration failure sample maps to an unreachable requirement
        (``2 * max_symbols``): the flow packet then spends its whole budget
        and is aborted, mirroring what the exact tier did.
        """
        grid = np.asarray(self.snr_grid_db)
        right = int(np.searchsorted(grid, float(snr_db)))
        left = max(0, right - 1)
        right = min(right, len(grid) - 1)
        if right == left:
            weight = 0.0
        else:
            weight = (float(snr_db) - grid[left]) / (grid[right] - grid[left])
        chosen = right if rng.random() < weight else left
        row = self.samples[chosen]
        drawn = row[int(rng.integers(len(row)))]
        return drawn if drawn > 0 else 2 * self.max_symbols

    def success_probability(self, snr_db: float) -> float:
        row = self.samples[self.grid_index(snr_db)]
        return sum(1 for value in row if value > 0) / len(row)


class _FlowBlock:
    """The scheduling quantum of a flow transmission: a symbol count only."""

    __slots__ = ("n_symbols",)

    def __init__(self, n_symbols: int) -> None:
        self.n_symbols = n_symbols


class _FlowChannel:
    """Inert stand-in: flow links never touch an actual channel.

    The cell resets channels at construction and pins them to the clock at
    grant time; both are no-ops here.  CSI comes from the explicit ``csi``
    callable the network installs, never from this object.
    """

    def reset(self) -> None:
        return None

    def describe(self) -> str:
        return "Flow()"


class FlowTransmission:
    """Drop-in for :class:`~repro.phy.session.CodecTransmission` at flow level."""

    __slots__ = (
        "required_symbols",
        "block_symbols",
        "max_symbols",
        "symbols_sent",
        "symbols_delivered",
        "decoded",
    )

    def __init__(self, model: SymbolCountModel, snr_db: float, rng: np.random.Generator):
        self.required_symbols = model.sample_requirement(snr_db, rng)
        self.block_symbols = model.block_symbols
        self.max_symbols = model.max_symbols
        self.symbols_sent = 0
        self.symbols_delivered = 0
        self.decoded = False

    @property
    def exhausted(self) -> bool:
        return self.symbols_sent >= self.max_symbols

    def send_next_block(self):
        # Flow-level pacing: the whole packet is one grant, quantized up to
        # the measured codec block size and capped by the symbol budget.
        # Total medium occupancy matches block-by-block pacing; only the
        # interleaving coarsens — packets, not blocks, are the scheduling
        # quantum, which is what makes the tier a *flow* simulation.
        blocks = -(-self.required_symbols // self.block_symbols)  # ceil
        needed = min(self.max_symbols, blocks * self.block_symbols)
        grant = max(needed - self.symbols_sent, self.block_symbols)
        self.symbols_sent += grant
        return _FlowBlock(grant), None

    def deliver(self, block, received, attempt: bool | None = None) -> bool:
        self.symbols_delivered += block.n_symbols
        if self.symbols_delivered >= self.required_symbols:
            self.decoded = True
        return self.decoded


@dataclass(frozen=True)
class FlowLink:
    """A user's link in the flow tier (satisfies the cell's ``Link`` protocol)."""

    model: SymbolCountModel
    channel: object = field(default_factory=_FlowChannel)

    @property
    def payload_bits(self) -> int:
        return self.model.payload_bits

    @property
    def max_symbols(self) -> int:
        return self.model.max_symbols

    def open(
        self,
        payload: np.ndarray,
        rng: np.random.Generator,
        observe: Callable[[], float],
    ) -> FlowTransmission:
        # One draw against the SINR observed at open time: requirement and
        # block pacing are fixed for the packet's lifetime.
        return FlowTransmission(self.model, float(observe()), rng)


def calibrate_symbol_model(
    family: str,
    snr_grid_db: "tuple[float, ...] | list[float]",
    samples_per_point: int,
    seed: int,
    smoke: bool = True,
    max_symbols: int = 4096,
    adc_bits: int | None = None,
) -> SymbolCountModel:
    """Measure symbols-to-decode distributions off the bit-exact codec.

    For every grid SNR, runs ``samples_per_point`` independent sessions of
    the registered code ``family`` through its calibrated channel and
    records the symbols each needed (or a failure marker).  Also probes the
    codec's first few block sizes to set the flow tier's grant quantum.
    Pure function of its arguments — workers recalibrating independently
    get byte-identical models.
    """
    grid = tuple(float(snr) for snr in snr_grid_db)
    if not grid:
        raise ValueError("need at least one grid SNR")
    if samples_per_point < 1:
        raise ValueError("samples_per_point must be at least 1")
    rows: list[tuple[int, ...]] = []
    block_sizes: list[int] = []
    payload_bits = None
    for gi, snr_db in enumerate(grid):
        session = make_codec_session(
            family,
            snr_db=snr_db,
            seed=0,
            smoke=smoke,
            max_symbols=max_symbols,
            termination="genie",
            adc_bits=adc_bits,
        )
        payload_bits = session.payload_bits
        row = []
        for sample in range(samples_per_point):
            rng = spawn_rng(seed, "fastpath-cal", family, gi, sample)
            payload = random_message_bits(session.payload_bits, rng)
            outcome = session.run(payload, rng)
            row.append(int(outcome.symbols_sent) if outcome.success else -1)
            # Dead-point early abort: a grid SNR whose first 8 runs all
            # exhaust the budget is below the code's operating floor; fill
            # the rest as failures instead of burning full budgets on them.
            if len(row) >= 8 and all(value < 0 for value in row):
                row.extend([-1] * (samples_per_point - len(row)))
                break
        rows.append(tuple(row))
        # Probe the grant quantum: the sizes of the first few blocks.
        probe_rng = spawn_rng(seed, "fastpath-probe", family, gi)
        session.channel.reset()
        probe = session.open_transmission(
            random_message_bits(session.payload_bits, probe_rng), probe_rng
        )
        for _ in range(8):
            if probe.exhausted:
                break
            block, _ = probe.send_next_block()
            block_sizes.append(int(block.n_symbols))
    return SymbolCountModel(
        family=family,
        payload_bits=int(payload_bits),
        max_symbols=int(max_symbols),
        block_symbols=max(1, round(sum(block_sizes) / len(block_sizes))),
        snr_grid_db=grid,
        samples=tuple(rows),
    )


_MODEL_CACHE: dict[tuple, SymbolCountModel] = {}


def cached_symbol_model(
    family: str,
    snr_grid_db: "tuple[float, ...] | list[float]",
    samples_per_point: int,
    seed: int,
    smoke: bool = True,
    max_symbols: int = 4096,
    adc_bits: int | None = None,
) -> SymbolCountModel:
    """Per-process memoized :func:`calibrate_symbol_model` (it is pure)."""
    key = (
        family,
        tuple(float(snr) for snr in snr_grid_db),
        int(samples_per_point),
        int(seed),
        bool(smoke),
        int(max_symbols),
        adc_bits,
    )
    model = _MODEL_CACHE.get(key)
    if model is None:
        model = _MODEL_CACHE[key] = calibrate_symbol_model(
            family, snr_grid_db, samples_per_point, seed, smoke, max_symbols, adc_bits
        )
    return model
