"""City-scale multi-cell network simulation.

The network layer composes many :class:`~repro.mac.cell.MacCell`\\ s under a
single symbol-time clock, replacing each user's standalone SNR with a live
uplink **SINR** (serving-cell path-loss signal over interfering cells'
transmit activity plus noise), walking users through the city
(:mod:`repro.net.mobility`), handing them off between cells, and offering
two fidelity tiers under the same MAC/event machinery:

* ``exact`` — every block goes through a real encoder/channel/decoder
  (:mod:`repro.net.network`);
* ``flow`` — packets sample calibrated symbols-to-decode distributions
  measured off the bit-exact codec (:mod:`repro.net.fastpath`), for
  city-scale user counts.

:mod:`repro.net.shard` fans replicas and decoupled per-cell workloads
across processes with worker-count-invariant (byte-identical) results.
"""

from repro.net.fastpath import (
    FlowLink,
    FlowTransmission,
    SymbolCountModel,
    cached_symbol_model,
    calibrate_symbol_model,
)
from repro.net.geometry import CityGeometry
from repro.net.mobility import MobilityModel
from repro.net.network import (
    CellNetwork,
    NetworkConfig,
    NetworkResult,
    SinrBitChannel,
    SinrChannel,
    default_symbol_model,
    network_code,
    network_payloads,
    simulate_network,
)
from repro.net.shard import (
    merge_cell_results,
    replica_config,
    simulate_cells_sharded,
    simulate_network_replicas,
)

__all__ = [
    "CellNetwork",
    "CityGeometry",
    "FlowLink",
    "FlowTransmission",
    "MobilityModel",
    "NetworkConfig",
    "NetworkResult",
    "SinrBitChannel",
    "SinrChannel",
    "SymbolCountModel",
    "cached_symbol_model",
    "calibrate_symbol_model",
    "default_symbol_model",
    "merge_cell_results",
    "network_code",
    "network_payloads",
    "replica_config",
    "simulate_cells_sharded",
    "simulate_network",
    "simulate_network_replicas",
]
