"""Cell/user placement geometry and the uplink SINR model.

The network layer works in two spatial primitives: a fixed grid of base
stations and continuous user positions.  Radio quality is a deterministic
log-distance path-loss law, expressed directly as an SNR in dB *at the
receiving base station, in units of that station's noise floor*:

    ``snr_db(d) = reference_snr_db - 10 * alpha * log10(max(d, d_min) / d_ref)``

Every transmitter radiates the same power (the library's unit-energy
constellation convention), so the same law prices both the serving user's
signal and every interfering user's leakage, and SINR composition happens
in linear units of noise power::

    SINR = S / (1 + sum_i I_i)        (S, I_i linear, noise == 1)

Two determinism details matter downstream and are deliberate here:

* all per-cell SNRs are computed by one vectorized code path
  (:meth:`CityGeometry.snrs_db`), so the scalar accessor and the
  association argmax can never disagree by a rounding bit;
* an equidistant user resolves ties toward the lowest cell index
  (``np.argmax`` semantics), which the handoff tests pin.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.utils.units import db_to_linear, linear_to_db

__all__ = ["CityGeometry"]


@dataclass(frozen=True)
class CityGeometry:
    """Base-station positions plus the path-loss law (all distances in meters)."""

    cell_x: tuple[float, ...]
    cell_y: tuple[float, ...]
    cell_radius: float
    reference_snr_db: float
    path_loss_exponent: float
    reference_distance: float
    min_distance: float

    def __post_init__(self) -> None:
        if len(self.cell_x) != len(self.cell_y) or not self.cell_x:
            raise ValueError("need matching, non-empty cell coordinate tuples")
        for name in ("cell_radius", "reference_distance", "min_distance"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.path_loss_exponent <= 0:
            raise ValueError("path_loss_exponent must be positive")

    @classmethod
    def grid(
        cls,
        n_cells: int,
        cell_radius: float,
        reference_snr_db: float,
        path_loss_exponent: float,
        reference_distance: float,
        min_distance: float,
    ) -> "CityGeometry":
        """A square grid of base stations spaced two cell radii apart."""
        if n_cells < 1:
            raise ValueError(f"n_cells must be at least 1, got {n_cells}")
        columns = math.ceil(math.sqrt(n_cells))
        spacing = 2.0 * cell_radius
        xs = tuple((index % columns) * spacing for index in range(n_cells))
        ys = tuple((index // columns) * spacing for index in range(n_cells))
        return cls(
            cell_x=xs,
            cell_y=ys,
            cell_radius=float(cell_radius),
            reference_snr_db=float(reference_snr_db),
            path_loss_exponent=float(path_loss_exponent),
            reference_distance=float(reference_distance),
            min_distance=float(min_distance),
        )

    @property
    def n_cells(self) -> int:
        return len(self.cell_x)

    def bounds(self) -> tuple[tuple[float, float], tuple[float, float]]:
        """The ``((x_min, x_max), (y_min, y_max))`` box users live in."""
        r = self.cell_radius
        return (
            (min(self.cell_x) - r, max(self.cell_x) + r),
            (min(self.cell_y) - r, max(self.cell_y) + r),
        )

    # -- path loss -----------------------------------------------------------
    @cached_property
    def _cells_xy(self) -> tuple[np.ndarray, np.ndarray]:
        # cached_property writes straight into __dict__, which a frozen
        # dataclass permits; the arrays derive from frozen fields.
        return np.asarray(self.cell_x), np.asarray(self.cell_y)

    def snrs_db(self, x: float, y: float) -> np.ndarray:
        """Per-cell received SNR (dB over noise) from a transmitter at (x, y)."""
        cells_x, cells_y = self._cells_xy
        distance = np.maximum(np.hypot(cells_x - x, cells_y - y), self.min_distance)
        return self.reference_snr_db - 10.0 * self.path_loss_exponent * np.log10(
            distance / self.reference_distance
        )

    def snrs_db_many(self, xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
        """``snrs_db`` for many transmitters at once: shape (len(xs), n_cells).

        Elementwise-identical to calling :meth:`snrs_db` per transmitter —
        broadcasting applies the same float operations in the same order —
        so row ``i`` can seed the scalar path's cache bit-exactly.
        """
        cells_x, cells_y = self._cells_xy
        distance = np.maximum(
            np.hypot(cells_x - np.asarray(xs)[:, None], cells_y - np.asarray(ys)[:, None]),
            self.min_distance,
        )
        return self.reference_snr_db - 10.0 * self.path_loss_exponent * np.log10(
            distance / self.reference_distance
        )

    def snr_db(self, x: float, y: float, cell: int) -> float:
        # Route through the vectorized law so scalar and vector reads of the
        # same geometry can never differ in the last bit.
        return float(self.snrs_db(x, y)[cell])

    def strongest_cell(self, x: float, y: float) -> int:
        """The best serving cell for a user at (x, y); ties → lowest index."""
        return int(np.argmax(self.snrs_db(x, y)))

    @staticmethod
    def sinr_db(signal_db: float, interference_db: list[float]) -> float:
        """Compose a serving signal and interferer powers into an SINR (dB).

        All terms are in dB over the receiving station's noise floor.  With
        no active interferers the serving SNR is returned *unchanged* — not
        round-tripped through linear units — so an interference-free network
        is bit-identical to a plain SNR one (the degeneration tests rely on
        this).
        """
        if not interference_db:
            return signal_db
        total = sum(db_to_linear(term) for term in interference_db)
        return linear_to_db(db_to_linear(signal_db) / (1.0 + total))
