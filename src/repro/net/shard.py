"""Process fan-out for city simulations, worker-count invariant.

Two shapes of parallelism, both on the library's ``stride_map``/``spawn_rng``
convention (randomness derives from seed labels, never from worker
assignment, so any ``n_workers`` reproduces the serial run byte for byte):

* :func:`simulate_network_replicas` — independent *replicas* of one city
  (seed-varied Monte-Carlo over the whole network), the bread-and-butter
  scale-out for confidence intervals at any fidelity tier;
* :func:`simulate_cells_sharded` — the *per-cell workloads* of a single
  city spread across processes.  Cells only decouple when nothing ties
  them together, so this path requires interference off and mobility off
  (enforced), and the reassembled result is pinned byte-identical to the
  in-process network under exactly those conditions.

The byte-level invariance contract is over
``json.dumps(summary, sort_keys=True)`` of the returned summaries.
"""

from __future__ import annotations

import dataclasses
from functools import partial

from repro.net.network import CellNetwork, NetworkConfig, NetworkResult
from repro.utils.parallel import stride_map
from repro.utils.rng import derive_seed

__all__ = [
    "merge_cell_results",
    "replica_config",
    "simulate_cells_sharded",
    "simulate_network_replicas",
]


def replica_config(config: NetworkConfig, replica: int) -> NetworkConfig:
    """Replica ``r``'s config: the same city, an independent derived seed."""
    return dataclasses.replace(
        config, seed=derive_seed(config.seed, "net-replica", replica)
    )


def _replica_batch(config: NetworkConfig, batch: list) -> list:
    return [
        (index, CellNetwork(replica_config(config, replica)).run().summary())
        for index, replica in batch
    ]


def simulate_network_replicas(
    config: NetworkConfig, n_replicas: int, n_workers: int = 1
) -> list[dict]:
    """Run ``n_replicas`` seed-independent cities; summaries in replica order."""
    if n_replicas < 1:
        raise ValueError(f"n_replicas must be at least 1, got {n_replicas}")
    return stride_map(
        partial(_replica_batch, config), list(range(n_replicas)), n_workers
    )


def _decoupled_or_raise(config: NetworkConfig) -> None:
    if config.interference and config.n_cells > 1:
        raise ValueError(
            "cell sharding requires interference=False (cells must decouple)"
        )
    if config.epoch_symbols != 0:
        raise ValueError("cell sharding requires mobility off (epoch_symbols=0)")


def _cell_batch(config: NetworkConfig, batch: list) -> list:
    return [
        (index, CellNetwork(config, restrict_to_cell=cell).run())
        for index, cell in batch
    ]


def merge_cell_results(
    config: NetworkConfig, parts: "list[NetworkResult]"
) -> NetworkResult:
    """Reassemble per-cell results of a decoupled city into one result."""
    packets = sorted(
        (packet for part in parts for packet in part.packets),
        key=lambda p: (p.user, p.index),
    )
    serving = parts[0].final_serving if parts else ()
    return NetworkResult(
        scheduler=parts[0].scheduler,
        tier=config.tier,
        n_users=config.n_users,
        n_cells=config.n_cells,
        packets=tuple(packets),
        makespan=max((part.makespan for part in parts), default=0),
        n_handoffs=0,
        n_deferred_handoffs=0,
        handoffs_by_user=(0,) * config.n_users,
        final_serving=serving,
    )


def simulate_cells_sharded(
    config: NetworkConfig, n_workers: int = 1
) -> NetworkResult:
    """Split one decoupled city's per-cell workloads across processes.

    Each worker simulates one base station's cell with exactly the users
    the full network would have associated to it (association, payload
    streams, and per-packet RNG all derive from per-user seed labels, so
    omitting the other cells changes nothing).  The merged result is
    byte-identical to ``CellNetwork(config).run()`` for any worker count.
    """
    _decoupled_or_raise(config)
    parts = stride_map(
        partial(_cell_batch, config), list(range(config.n_cells)), n_workers
    )
    return merge_cell_results(config, parts)
