"""User mobility: deterministic 2D reflected random walks on an epoch clock.

Positions update at *epoch* boundaries (``epoch_symbols`` symbol-times), not
per symbol: channel coherence at walking speeds is many thousands of symbol
times, and a coarser position clock is what lets the whole trajectory be
precomputed as two arrays per axis.  Each coordinate of each user is an
independent :func:`repro.channels.traces.random_walk_trace` — the same
(vectorized) walk generator the time-varying channels use — reflected at the
city bounds, with every stream derived from ``(seed, label, user)`` so a
user's path never depends on how many other users exist or which process
simulates it.

Trajectories are finite: a walk precomputed for ``n_epochs`` epochs *parks*
at its final position if the simulation outlives it (position reads clamp to
the last epoch).  The network layer sizes ``n_epochs`` from its worst-case
makespan bound and stops scheduling epoch events once everyone is parked.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.channels.traces import random_walk_trace
from repro.utils.rng import spawn_rng

__all__ = ["MobilityModel"]


@dataclass(frozen=True)
class MobilityModel:
    """Precomputed per-user trajectories sampled on the epoch clock.

    ``xs``/``ys`` have shape ``(n_users, n_epochs + 1)``: column 0 is the
    initial placement, column ``e`` the position during epoch ``e``.
    """

    xs: np.ndarray
    ys: np.ndarray
    epoch_symbols: int

    def __post_init__(self) -> None:
        if self.xs.shape != self.ys.shape or self.xs.ndim != 2:
            raise ValueError("xs and ys must be equal-shape (n_users, n_epochs+1)")
        if self.epoch_symbols < 0:
            raise ValueError("epoch_symbols must be non-negative")

    @property
    def n_users(self) -> int:
        return self.xs.shape[0]

    @property
    def n_epochs(self) -> int:
        return self.xs.shape[1] - 1

    def position(self, user: int, epoch: int) -> tuple[float, float]:
        """Where ``user`` is during ``epoch`` (parked at the final column)."""
        column = min(epoch, self.n_epochs)
        return float(self.xs[user, column]), float(self.ys[user, column])

    def positions(self, epoch: int) -> tuple[np.ndarray, np.ndarray]:
        """Every user's position during ``epoch`` (the vectorized accessor)."""
        column = min(epoch, self.n_epochs)
        return self.xs[:, column], self.ys[:, column]

    @classmethod
    def static(cls, positions: "list[tuple[float, float]] | tuple") -> "MobilityModel":
        """No mobility: every user pinned to its initial position."""
        xs = np.array([[x] for x, _ in positions], dtype=np.float64).reshape(-1, 1)
        ys = np.array([[y] for _, y in positions], dtype=np.float64).reshape(-1, 1)
        return cls(xs=xs, ys=ys, epoch_symbols=0)

    @classmethod
    def walks(
        cls,
        n_users: int,
        n_epochs: int,
        epoch_symbols: int,
        step: float,
        x_range: tuple[float, float],
        y_range: tuple[float, float],
        seed: int,
        initial_positions: "list[tuple[float, float]] | None" = None,
    ) -> "MobilityModel":
        """Independent reflected Gaussian walks for every user.

        ``step`` is the per-epoch standard deviation of each coordinate's
        increment, in meters.  Explicit ``initial_positions`` (tests, staged
        scenarios) replace the uniform placement draw but keep the same walk
        streams.
        """
        if n_users < 0:
            raise ValueError(f"n_users must be non-negative, got {n_users}")
        if n_epochs < 0:
            raise ValueError(f"n_epochs must be non-negative, got {n_epochs}")
        if step < 0:
            raise ValueError(f"step must be non-negative, got {step}")
        if initial_positions is not None and len(initial_positions) != n_users:
            raise ValueError(
                f"{len(initial_positions)} initial positions for {n_users} users"
            )
        xs = np.empty((n_users, n_epochs + 1), dtype=np.float64)
        ys = np.empty((n_users, n_epochs + 1), dtype=np.float64)
        for user in range(n_users):
            if initial_positions is None:
                placement = spawn_rng(seed, "net-place", user)
                x0 = float(placement.uniform(*x_range))
                y0 = float(placement.uniform(*y_range))
            else:
                x0, y0 = map(float, initial_positions[user])
            xs[user, 0] = x0
            ys[user, 0] = y0
            if n_epochs:
                xs[user, 1:] = random_walk_trace(
                    x0,
                    n_epochs,
                    step,
                    spawn_rng(seed, "net-walk", user, "x"),
                    min_snr_db=x_range[0],
                    max_snr_db=x_range[1],
                )
                ys[user, 1:] = random_walk_trace(
                    y0,
                    n_epochs,
                    step,
                    spawn_rng(seed, "net-walk", user, "y"),
                    min_snr_db=y_range[0],
                    max_snr_db=y_range[1],
                )
        return cls(xs=xs, ys=ys, epoch_symbols=int(epoch_symbols))
