"""The multi-cell network: N MAC cells, one clock, SINR, mobility, handoff.

This is the layer the ROADMAP's city-scale item asks for.  A
:class:`CellNetwork` places base stations on a grid
(:class:`~repro.net.geometry.CityGeometry`), walks users through the city
(:class:`~repro.net.mobility.MobilityModel`), and runs one
:class:`~repro.mac.cell.MacCell` per base station **on a single shared
** :class:`~repro.link.events.EventScheduler` — so a block on the air in one
cell is, at the same instant, interference in every other cell.

SINR instead of SNR
-------------------
Every user's channel is a :class:`SinrChannel` (or :class:`SinrBitChannel`
for bit-domain code families) whose noise level is recomputed from live
network state each time the cell pins the channel to the clock before a
grant (the ``set_time`` hook ``MacCell`` already honors).  The uplink SINR
of user *u* served by cell *s* is

    ``S_u / (1 + sum_c I_c)``

in units of *s*'s noise floor, where ``S_u`` is path-loss attenuated signal
from *u*'s current position and the sum runs over every *other* cell whose
medium is busy right now — radiating from its transmitting user's position
(uplink interference comes from handsets, not towers).  Interference is
sampled at grant time and held for the block: a block-length approximation,
priced by the calibration tests.  With one cell, or interference disabled,
the serving SNR passes through untouched — no dB→linear→dB round-trip — so
the degenerate network is bit-identical to a standalone ``MacCell``.

Mobility and handoff
--------------------
Positions advance on epoch boundaries (``PRIORITY_ACK``: after blocks land,
before new grants).  Each epoch, every user is re-associated to its
strongest cell if that cell beats the serving one by more than
``handoff_hysteresis_db`` (ties and dead heats stay put — deterministic).
A user whose own block is on the air is *not* torn off mid-block: the
handoff defers to the block boundary and re-evaluates there.  Migration
moves the user's whole ``_UserState`` — queue, partially transmitted head
packet, delivered-bits accounting — so no symbol is lost or double-counted
across a handoff; the new cell's scheduler adopts the user immediately.

Fidelity tiers
--------------
``tier="exact"`` runs real codecs per block; ``tier="flow"`` swaps each
user's PHY for a calibrated :class:`~repro.net.fastpath.FlowLink` while
keeping *all* of the above machinery (medium contention, interference
activity, mobility, handoff) unchanged.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.channels.awgn import AWGNChannel
from repro.channels.bsc import BSCChannel
from repro.link.events import (
    PRIORITY_ACK,
    PRIORITY_BLOCK,
    EventScheduler,
)
from repro.mac.cell import CellUser, MacCell, RatelessLink
from repro.mac.metrics import CellResult, PacketOutcome
from repro.mac.schedulers import make_scheduler
from repro.net.fastpath import FlowLink, SymbolCountModel, cached_symbol_model
from repro.net.geometry import CityGeometry
from repro.net.mobility import MobilityModel
from repro.obs.telemetry import current as current_telemetry
from repro.phy.families import bpsk_crossover_probability, channel_for_code, make_code
from repro.phy.session import CodecSession
from repro.utils.bitops import random_message_bits
from repro.utils.rng import derive_seed, spawn_rng
from repro.utils.units import db_to_linear, linear_to_db

__all__ = [
    "CellNetwork",
    "NetworkConfig",
    "NetworkResult",
    "SinrBitChannel",
    "SinrChannel",
    "default_symbol_model",
    "network_code",
    "network_payloads",
    "simulate_network",
]


class SinrChannel(AWGNChannel):
    """An AWGN channel whose operating SNR tracks a live SINR callback.

    ``transmit`` is inherited untouched, so for any fixed SINR value the
    noise draws are bit-identical to a plain :class:`AWGNChannel` at that
    SNR — the property the single-cell degeneration test pins.  The cell
    refreshes the level via the ``set_time`` hook it already calls before
    every grant.
    """

    def __init__(self, sinr_db_fn, signal_power: float = 1.0, adc_bits: int | None = None):
        self._sinr_db_fn = sinr_db_fn
        super().__init__(
            snr_db=float(sinr_db_fn()), signal_power=signal_power, adc_bits=adc_bits
        )

    def set_time(self, time: int) -> None:
        snr_db = float(self._sinr_db_fn())
        self.snr_db = snr_db
        self.noise_energy = self.signal_power / db_to_linear(snr_db)

    def describe(self) -> str:
        return f"SINR-AWGN(now={self.snr_db:.1f} dB)"


class SinrBitChannel(BSCChannel):
    """The bit-domain counterpart: crossover probability tracks the SINR.

    Bit-domain code families (LT fountain, bit-mode spinal) see the same
    physical SINR through the library's BPSK hard-decision mapping.
    """

    def __init__(self, sinr_db_fn):
        self._sinr_db_fn = sinr_db_fn
        super().__init__(bpsk_crossover_probability(float(sinr_db_fn())))

    def set_time(self, time: int) -> None:
        self.crossover_probability = bpsk_crossover_probability(
            float(self._sinr_db_fn())
        )

    def describe(self) -> str:
        return f"SINR-BSC(p={self.crossover_probability:g})"


@dataclass(frozen=True)
class NetworkConfig:
    """Everything a city run depends on, hashable and picklable.

    Traffic is fully backlogged: every user starts with
    ``packets_per_user`` packets queued at t=0 (per-packet arrival
    processes stay a single-cell feature for now — a handed-off user's
    pending arrivals would still enqueue at its origin cell).
    """

    n_cells: int = 4
    n_users: int = 8
    packets_per_user: int = 2
    scheduler: str = "round-robin"
    code: str = "spinal"
    tier: str = "exact"
    seed: int = 20111114
    smoke_codes: bool = True
    max_symbols: int = 1024
    adc_bits: int | None = None
    # -- geometry / radio ----------------------------------------------------
    cell_radius: float = 400.0
    reference_snr_db: float = 16.0
    path_loss_exponent: float = 3.0
    reference_distance: float = 50.0
    min_distance: float = 1.0
    interference: bool = True
    # -- mobility / handoff --------------------------------------------------
    epoch_symbols: int = 128
    mobility_step: float = 80.0
    max_epochs: int = 1024
    handoff_hysteresis_db: float = 1.0
    user_positions: "tuple[tuple[float, float], ...] | None" = None
    # -- flow tier calibration -----------------------------------------------
    calibration_samples: int = 48
    calibration_grid_points: int = 9
    model: SymbolCountModel | None = None

    def __post_init__(self) -> None:
        if self.tier not in ("exact", "flow"):
            raise ValueError(f"tier must be 'exact' or 'flow', got {self.tier!r}")
        if self.n_cells < 1:
            raise ValueError(f"n_cells must be at least 1, got {self.n_cells}")
        if self.n_users < 0:
            raise ValueError(f"n_users must be non-negative, got {self.n_users}")
        if self.packets_per_user < 1:
            raise ValueError("packets_per_user must be at least 1")
        if self.max_symbols < 1:
            raise ValueError("max_symbols must be at least 1")
        if self.epoch_symbols < 0:
            raise ValueError("epoch_symbols must be non-negative")
        if self.user_positions is not None and len(self.user_positions) != self.n_users:
            raise ValueError(
                f"{len(self.user_positions)} positions for {self.n_users} users"
            )

    def geometry(self) -> CityGeometry:
        return CityGeometry.grid(
            self.n_cells,
            self.cell_radius,
            self.reference_snr_db,
            self.path_loss_exponent,
            self.reference_distance,
            self.min_distance,
        )


def network_code(config: NetworkConfig, user: int, snr_db: float):
    """The per-user code instance (the seed-label convention, made public)."""
    return make_code(
        config.code,
        seed=derive_seed(config.seed, "net-code", user),
        snr_db=snr_db,
        smoke=config.smoke_codes,
    )


def network_payloads(
    config: NetworkConfig, user: int, payload_bits: int
) -> list[np.ndarray]:
    """The per-user payload streams (the seed-label convention, made public)."""
    return [
        random_message_bits(payload_bits, spawn_rng(config.seed, "net-payload", user, p))
        for p in range(config.packets_per_user)
    ]


def default_symbol_model(config: NetworkConfig) -> SymbolCountModel:
    """Calibrate (memoized) a flow model spanning the config's SINR range.

    The grid runs from the worst serving SNR (a user at the Voronoi corner,
    ``radius * sqrt(2)`` from its nearest base station) minus an
    interference margin, up to the reference SNR, at roughly 2.5 dB spacing
    (``calibration_grid_points`` is a floor; dead low-SNR points abort
    early inside the calibrator, so the fine grid stays affordable).
    """
    geometry = config.geometry()
    corner_db = geometry.snr_db(
        geometry.cell_x[0] + geometry.cell_radius,
        geometry.cell_y[0] + geometry.cell_radius,
        0,
    )
    margin = 6.0 if (config.interference and config.n_cells > 1) else 0.0
    low = corner_db - margin
    high = config.reference_snr_db
    points = max(
        2, int(config.calibration_grid_points), round((high - low) / 2.5) + 1
    )
    grid = tuple(
        low + (high - low) * index / (points - 1) for index in range(points)
    )
    return cached_symbol_model(
        config.code,
        grid,
        config.calibration_samples,
        derive_seed(config.seed, "net-calibration"),
        smoke=config.smoke_codes,
        max_symbols=config.max_symbols,
        adc_bits=config.adc_bits,
    )


@dataclass(frozen=True)
class NetworkResult:
    """Network-wide outcome: cell metrics plus mobility/handoff accounting."""

    scheduler: str
    tier: str
    n_users: int
    n_cells: int
    packets: tuple[PacketOutcome, ...]
    makespan: int
    n_handoffs: int
    n_deferred_handoffs: int
    handoffs_by_user: tuple[int, ...]
    final_serving: tuple[int, ...]

    def as_cell_result(self) -> CellResult:
        """The network flattened to one cell's metric surface (same packets)."""
        return CellResult(
            scheduler=self.scheduler,
            n_users=self.n_users,
            packets=self.packets,
            makespan=self.makespan,
        )

    @property
    def aggregate_goodput(self) -> float:
        return self.as_cell_result().aggregate_goodput

    @property
    def jain_fairness(self) -> float:
        # A zero-user city has a vacuously fair (empty) allocation; the
        # cell-level index treats that as undefined and raises.
        if self.n_users == 0:
            return 1.0
        return self.as_cell_result().jain_fairness

    @property
    def delivery_rate(self) -> float:
        cell = self.as_cell_result()
        return cell.n_delivered / cell.n_packets if cell.n_packets else 0.0

    @property
    def mean_latency(self) -> float:
        return self.as_cell_result().mean_latency

    @property
    def handoffs_per_user(self) -> float:
        return self.n_handoffs / self.n_users if self.n_users else 0.0

    @property
    def handoff_rate_per_kilosymbol(self) -> float:
        return 1000.0 * self.n_handoffs / self.makespan if self.makespan else 0.0

    def summary(self) -> dict:
        """JSON-native summary (the CLI/shard serialization surface)."""
        cell = self.as_cell_result()
        return {
            "scheduler": self.scheduler,
            "tier": self.tier,
            "n_users": self.n_users,
            "n_cells": self.n_cells,
            "n_packets": cell.n_packets,
            "n_delivered": cell.n_delivered,
            "delivery_rate": self.delivery_rate,
            "aggregate_goodput": self.aggregate_goodput,
            "jain_fairness": self.jain_fairness,
            "mean_latency": self.mean_latency,
            "makespan": self.makespan,
            "n_handoffs": self.n_handoffs,
            "n_deferred_handoffs": self.n_deferred_handoffs,
            "handoffs_per_user": self.handoffs_per_user,
            "handoff_rate_per_kilosymbol": self.handoff_rate_per_kilosymbol,
        }


class CellNetwork:
    """Construct, then :meth:`run` to completion; :meth:`result` for metrics."""

    def __init__(
        self,
        config: NetworkConfig,
        *,
        mobility: MobilityModel | None = None,
        model: SymbolCountModel | None = None,
        restrict_to_cell: int | None = None,
    ) -> None:
        self.config = config
        if restrict_to_cell is not None:
            # Simulating one cell in isolation is only meaningful when the
            # cells are decoupled (the sharding layer's contract).
            if not 0 <= restrict_to_cell < config.n_cells:
                raise ValueError(f"no cell {restrict_to_cell} in this network")
            if config.interference and config.n_cells > 1:
                raise ValueError("restrict_to_cell requires interference=False")
            if config.epoch_symbols != 0:
                raise ValueError("restrict_to_cell requires mobility off")
        self.restrict_to_cell = restrict_to_cell
        self._tel = current_telemetry()
        self.clock = EventScheduler()
        self._tel.bind_clock(self.clock)
        self.geometry = config.geometry()
        self.mobility = mobility if mobility is not None else self._build_mobility()
        if self.mobility.n_users != config.n_users:
            raise ValueError(
                f"mobility model covers {self.mobility.n_users} users, "
                f"config has {config.n_users}"
            )
        self.epoch = 0
        self.n_handoffs = 0
        self.n_deferred_handoffs = 0
        self.handoff_counts = [0] * config.n_users
        self._pending_handoff = [False] * config.n_users
        # Per-epoch memo of each user's per-cell SNR vector: positions only
        # change at epoch boundaries, but the schedulers observe CSI for
        # every queued user at every grant — recomputing the path-loss law
        # there dominated city-scale runs.  Cleared on every epoch tick.
        self._snr_cache: dict[int, np.ndarray] = {}
        # Scalar serving-cell SNR per user (the hot CSI read), invalidated
        # with the epoch cache and per-user on handoff.
        self._signal_cache: dict[int, float] = {}
        # Per-instant memo of the summed linear interference each cell hears.
        # Transmit activity is frozen while one event handler runs, but a
        # grant's CSI scan asks every queued user — without the memo the
        # interference sum is recomputed per user, O(users²) per cell.
        self._interference_cache: "tuple[int, list[float]] | None" = None
        self.serving = [
            int(np.argmax(self._user_snrs(user))) for user in range(config.n_users)
        ]
        if model is None:
            model = config.model
        if config.tier == "flow" and model is None:
            model = default_symbol_model(config)
        self._model = model
        # Channels read construction-time SINR (no cell busy yet) through the
        # same callback they use live, so `cells` must exist, empty, first.
        self.cells: list[MacCell] = []
        users_by_cell: list[list[CellUser]] = [[] for _ in range(config.n_cells)]
        for user in range(config.n_users):
            cell = self.serving[user]
            if restrict_to_cell is not None and cell != restrict_to_cell:
                continue
            users_by_cell[cell].append(self._build_user(user))
        self.cells[:] = [
            MacCell(
                cell_users,
                make_scheduler(config.scheduler),
                seed=config.seed,
                clock=self.clock,
                allow_empty=True,
            )
            for cell_users in users_by_cell
        ]
        # Packet objects mutate in place wherever their user roams; keep one
        # global registry so results never depend on which cell finished them.
        self._packets = [packet for cell in self.cells for packet in cell.packets]
        if config.epoch_symbols > 0 and self.mobility.n_epochs > 0:
            self.clock.schedule(config.epoch_symbols, PRIORITY_ACK, self._on_epoch)

    # -- construction helpers ------------------------------------------------
    def _build_mobility(self) -> MobilityModel:
        config = self.config
        x_range, y_range = self.geometry.bounds()
        if config.epoch_symbols == 0:
            n_epochs = 0
        else:
            # Worst case: the whole city's symbol budget serialized in one
            # cell; beyond that bound (or max_epochs) walks park.
            worst = config.n_users * config.packets_per_user * config.max_symbols
            n_epochs = min(config.max_epochs, math.ceil(worst / config.epoch_symbols) + 1)
        positions = (
            list(config.user_positions) if config.user_positions is not None else None
        )
        return MobilityModel.walks(
            config.n_users,
            n_epochs,
            config.epoch_symbols,
            config.mobility_step,
            x_range,
            y_range,
            config.seed,
            initial_positions=positions,
        )

    def _build_user(self, user: int) -> CellUser:
        config = self.config

        def csi(now: int, user=user) -> float:
            return self.sinr_db(user)

        def sinr_fn(user=user) -> float:
            return self.sinr_db(user)

        if config.tier == "flow":
            link = FlowLink(model=self._model)
            payload_bits = link.payload_bits
        else:
            x0, y0 = self.mobility.position(user, 0)
            snr0 = self.geometry.snr_db(x0, y0, self.serving[user])
            code = network_code(config, user, snr0)
            if code.info.domain == "symbol":
                channel = SinrChannel(
                    sinr_fn, signal_power=code.info.signal_power, adc_bits=config.adc_bits
                )
            else:
                channel = SinrBitChannel(sinr_fn)
            link = RatelessLink(
                CodecSession(
                    code, channel, termination="genie", max_symbols=config.max_symbols
                )
            )
            payload_bits = code.info.payload_bits
        return CellUser(
            link=link,
            payloads=network_payloads(config, user, payload_bits),
            csi=csi,
            uid=user,
        )

    # -- live radio state ----------------------------------------------------
    def _user_snrs(self, user: int) -> np.ndarray:
        """User ``user``'s per-cell SNR vector at its current-epoch position."""
        cached = self._snr_cache.get(user)
        if cached is None:
            cached = self._snr_cache[user] = self.geometry.snrs_db(
                *self.mobility.position(user, self.epoch)
            )
        return cached

    def _interference_linear(self) -> list[float]:
        """Summed linear interference power heard at each cell, right now.

        Keyed on the clock's executing-event index: transmit activity only
        changes inside grant/block events, so it is frozen for the duration
        of any one action (in particular a grant's whole CSI scan).  Terms
        are accumulated in cell-index order exactly as the uncached per-user
        path did, so the memo is bit-transparent.
        """
        key = self.clock.n_processed
        cached = self._interference_cache
        if cached is not None and cached[0] == key:
            return cached[1]
        transmitters = [cell.on_air_user for cell in self.cells]
        totals = [
            sum(
                db_to_linear(float(self._user_snrs(tx_user)[serving]))
                for index, tx_user in enumerate(transmitters)
                # Intra-cell is TDMA: one transmitter, no self-interference.
                if index != serving and tx_user is not None
            )
            for serving in range(len(self.cells))
        ]
        self._interference_cache = (key, totals)
        return totals

    def sinr_db(self, user: int) -> float:
        """User ``user``'s uplink SINR at its serving cell, right now."""
        signal_db = self._signal_cache.get(user)
        if signal_db is None:
            signal_db = self._signal_cache[user] = float(
                self._user_snrs(user)[self.serving[user]]
            )
        if not self.config.interference or self.config.n_cells == 1:
            return signal_db
        if not self.cells:
            return signal_db  # construction-time read: nothing is live yet
        total = self._interference_linear()[self.serving[user]]
        if total == 0.0:
            # No active interferers: return the serving SNR *unchanged* (no
            # dB round-trip), so interference-free degenerates bit-exactly.
            return signal_db
        sinr_db = linear_to_db(db_to_linear(signal_db) / (1.0 + total))
        if self._tel.enabled:
            self._tel.observe("net.sinr_db", sinr_db)
        return sinr_db

    # -- mobility / handoff --------------------------------------------------
    def _unfinished(self) -> bool:
        return any(not packet.finished for packet in self._packets)

    def _on_epoch(self) -> None:
        self.epoch += 1
        if self._tel.enabled:
            self._tel.counter("net.epochs")
        self._snr_cache.clear()
        self._signal_cache.clear()
        n_users = self.config.n_users
        if n_users:
            # One vectorized path-loss evaluation seeds every user's SNR
            # cache for the epoch (row i is bit-identical to the scalar
            # computation), and the candidate filter runs as array ops so
            # the scalar handoff logic only touches users that might move.
            matrix = self.geometry.snrs_db_many(*self.mobility.positions(self.epoch))
            self._snr_cache.update(enumerate(matrix))
            serving = np.asarray(self.serving)
            rows = np.arange(n_users)
            targets = np.argmax(matrix, axis=1)
            better = matrix[rows, targets] > (
                matrix[rows, serving] + self.config.handoff_hysteresis_db
            )
            for user in np.nonzero((targets != serving) & better)[0]:
                self._consider_handoff(int(user))
        if self.epoch < self.mobility.n_epochs and self._unfinished():
            self.clock.schedule(
                (self.epoch + 1) * self.config.epoch_symbols,
                PRIORITY_ACK,
                self._on_epoch,
            )

    def _consider_handoff(self, user: int) -> None:
        snrs = self._user_snrs(user)
        serving = self.serving[user]
        target = int(np.argmax(snrs))
        if target == serving:
            return
        # Strictly-better-plus-hysteresis: an exact tie (equidistant user)
        # deterministically stays with its serving cell.
        if snrs[target] <= snrs[serving] + self.config.handoff_hysteresis_db:
            return
        cell = self.cells[serving]
        if cell.on_air_user == user:
            # The user's own block is on the air: hand off at the block
            # boundary (after the block lands, before any new grant).
            self.n_deferred_handoffs += 1
            if self._tel.enabled:
                self._tel.counter("net.handoffs_deferred")
            if not self._pending_handoff[user]:
                self._pending_handoff[user] = True
                self.clock.schedule(
                    cell.busy_until,
                    PRIORITY_BLOCK,
                    lambda user=user: self._deferred_handoff(user),
                )
            return
        self._migrate(user, target)

    def _deferred_handoff(self, user: int) -> None:
        self._pending_handoff[user] = False
        self._consider_handoff(user)  # re-evaluate: positions may have moved on

    def _migrate(self, user: int, target: int) -> None:
        state = self.cells[self.serving[user]].detach_user(user)
        self.serving[user] = target
        self._signal_cache.pop(user, None)  # the serving-cell SNR changed
        self.cells[target].attach_state(state)
        self.n_handoffs += 1
        self.handoff_counts[user] += 1
        if self._tel.enabled:
            self._tel.counter("net.handoffs")

    # -- driving -------------------------------------------------------------
    def _event_budget(self) -> int:
        cells = sum(cell._event_budget() for cell in self.cells)
        epochs = self.mobility.n_epochs + 2
        handoffs = 2 * epochs * max(1, self.config.n_users)
        return 64 + cells + 4 * epochs + handoffs

    def run(self) -> NetworkResult:
        """Simulate until every packet in every cell is resolved."""
        self.clock.run(max_events=self._event_budget())
        if self._unfinished():  # pragma: no cover - liveness guard
            raise RuntimeError("network event budget exhausted with packets pending")
        return self.result()

    def result(self) -> NetworkResult:
        outcomes = []
        for packet in sorted(self._packets, key=lambda p: (p.user, p.index)):
            tx = packet.tx
            outcomes.append(
                PacketOutcome(
                    user=packet.user,
                    index=packet.index,
                    arrival=packet.arrival,
                    completed=packet.completed,
                    delivered=packet.delivered,
                    symbols_sent=0 if tx is None else int(tx.symbols_sent),
                    symbols_needed=int(tx.symbols_delivered) if packet.delivered else 0,
                    payload_bits=packet.payload_bits,
                )
            )
        return NetworkResult(
            scheduler=self.cells[0].scheduler.name,
            tier=self.config.tier,
            n_users=self.config.n_users,
            n_cells=self.config.n_cells,
            packets=tuple(outcomes),
            makespan=max((cell.closed_at for cell in self.cells), default=0),
            n_handoffs=self.n_handoffs,
            n_deferred_handoffs=self.n_deferred_handoffs,
            handoffs_by_user=tuple(self.handoff_counts),
            final_serving=tuple(self.serving),
        )


def simulate_network(
    config: NetworkConfig,
    *,
    mobility: MobilityModel | None = None,
    model: SymbolCountModel | None = None,
) -> NetworkResult:
    """Build and run one city to completion (the one-call entry point)."""
    return CellNetwork(config, mobility=mobility, model=model).run()
