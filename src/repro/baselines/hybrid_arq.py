"""Hybrid ARQ with Chase combining on top of the fixed-rate LDPC codes.

The paper's related-work section cites several attempts to make fixed-rate
codes behave ratelessly via incremental redundancy / hybrid ARQ
([9, 11, 14, 16]).  This module implements the simplest such scheme — full
retransmission with LLR (Chase) combining — as a baseline the examples can
contrast with the spinal code:

* each retransmission repeats the whole codeword;
* the receiver adds the new LLRs to the stored ones and re-runs BP;
* the achieved rate of a trial is ``k / (attempts * symbols_per_frame)``.

It adapts to SNR only in the coarse sense that bad channels trigger more
retransmissions; within one transmission it cannot exceed its nominal rate,
which is exactly the gap the spinal code closes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.ldpc_system import FixedRateLdpcSystem, LdpcConfig
from repro.channels.awgn import AWGNChannel
from repro.phy.ldpc_ir import LdpcIrCode
from repro.phy.session import CodecSession
from repro.utils.deprecation import warn_once

__all__ = ["HybridArqLdpcSystem", "ArqTrialResult"]


@dataclass(frozen=True)
class ArqTrialResult:
    """Outcome of delivering (or failing to deliver) one frame over ARQ."""

    success: bool
    attempts: int
    symbols_sent: int
    message_bits: int

    @property
    def rate(self) -> float:
        """Delivered rate in bits per channel use (0 for a failed frame)."""
        if self.symbols_sent == 0:
            raise ValueError("no symbols were sent; rate is undefined")
        return self.message_bits / self.symbols_sent if self.success else 0.0


class HybridArqLdpcSystem:
    """Fixed-rate LDPC link with retransmission and Chase combining."""

    def __init__(
        self,
        config: LdpcConfig,
        max_attempts: int = 8,
        codeword_bits: int = 648,
        max_iterations: int = 40,
        algorithm: str = "sum-product",
    ) -> None:
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be at least 1, got {max_attempts}")
        self.system = FixedRateLdpcSystem(
            config,
            codeword_bits=codeword_bits,
            max_iterations=max_iterations,
            algorithm=algorithm,
        )
        self.max_attempts = max_attempts

    def run_trial(self, snr_db: float, rng: np.random.Generator) -> ArqTrialResult:
        """Deliver one frame, retransmitting until decoded or out of attempts.

        .. deprecated::
            This is a byte-identical shim over the ``repro.phy`` codec API:
            Chase combining is :class:`~repro.phy.ldpc_ir.LdpcIrCode` with
            ``chunk_bits = n`` (whole-codeword repeats) run through a
            :class:`~repro.phy.session.CodecSession` — which also unlocks
            the finer puncturing schedules, transports, relays and cells
            this one-shot interface never supported.
        """
        warn_once(
            "HybridArqLdpcSystem.run_trial",
            "HybridArqLdpcSystem.run_trial is a shim over the repro.phy codec API; "
            "prefer CodecSession(LdpcIrCode(snr_db, chunk_bits=n, ...), "
            "AWGNChannel(snr_db)).run(payload, rng)",
        )
        code = self.system.code
        ir_code = LdpcIrCode(
            snr_db=snr_db,
            code=code,
            modulation=self.system.modulation,
            decoder=self.system.decoder,
        )
        symbols_per_frame = code.n // self.system.modulation.bits_per_symbol
        session = CodecSession(
            ir_code,
            AWGNChannel(snr_db=snr_db),
            termination="genie",
            max_symbols=self.max_attempts * symbols_per_frame,
        )
        message = rng.integers(0, 2, size=code.k, dtype=np.uint8)
        result = session.run(message, rng)
        return ArqTrialResult(
            success=result.success,
            attempts=result.decode_attempts,
            symbols_sent=result.symbols_sent,
            message_bits=code.k,
        )

    def mean_rate(self, snr_db: float, n_trials: int, rng: np.random.Generator) -> float:
        """Average delivered rate over independent frames at one SNR."""
        if n_trials <= 0:
            raise ValueError(f"n_trials must be positive, got {n_trials}")
        rates = [self.run_trial(snr_db, rng).rate for _ in range(n_trials)]
        return float(np.mean(rates))

    def describe(self) -> str:
        return f"HARQ({self.system.describe()}, max_attempts={self.max_attempts})"
