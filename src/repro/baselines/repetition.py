"""Uncoded / repetition-coded QPSK reference system.

Not part of the paper's evaluation, but a useful floor in tests and examples:
any channel code worth its salt should beat repetition coding, and the
spinal code's low-SNR robustness is easiest to appreciate against it.
"""

from __future__ import annotations

import numpy as np

from repro.modulation.psk import QPSK
from repro.utils.units import db_to_linear

__all__ = ["RepetitionQpskSystem"]


class RepetitionQpskSystem:
    """QPSK with each symbol repeated ``repetitions`` times and soft combining."""

    def __init__(self, repetitions: int = 1) -> None:
        if repetitions < 1:
            raise ValueError(f"repetitions must be at least 1, got {repetitions}")
        self.repetitions = repetitions
        self.modulation = QPSK()

    @property
    def nominal_rate(self) -> float:
        """Bits per channel use when every bit is received correctly."""
        return self.modulation.bits_per_symbol / self.repetitions

    def transmit_bits(
        self, bits: np.ndarray, snr_db: float, rng: np.random.Generator
    ) -> np.ndarray:
        """Send bits and return the receiver's hard decisions."""
        bits = np.asarray(bits, dtype=np.uint8)
        if bits.size % self.modulation.bits_per_symbol != 0:
            raise ValueError(
                f"bit count {bits.size} must be a multiple of "
                f"{self.modulation.bits_per_symbol}"
            )
        noise_energy = 1.0 / db_to_linear(snr_db)
        symbols = self.modulation.modulate(bits)
        combined_llrs = np.zeros(bits.size, dtype=np.float64)
        for _ in range(self.repetitions):
            noise = np.sqrt(noise_energy / 2.0) * (
                rng.standard_normal(symbols.size) + 1j * rng.standard_normal(symbols.size)
            )
            combined_llrs += self.modulation.demodulate_llr(symbols + noise, noise_energy)
        return (combined_llrs < 0).astype(np.uint8)

    def bit_error_rate(
        self, snr_db: float, n_bits: int, rng: np.random.Generator
    ) -> float:
        """Monte-Carlo BER at one SNR."""
        bits_per_symbol = self.modulation.bits_per_symbol
        n_bits = max(bits_per_symbol, n_bits - n_bits % bits_per_symbol)
        bits = rng.integers(0, 2, size=n_bits, dtype=np.uint8)
        decided = self.transmit_bits(bits, snr_db, rng)
        return float(np.mean(decided != bits))
