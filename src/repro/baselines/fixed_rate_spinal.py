"""Fixed-rate operation of spinal codes.

Section 3 of the paper: "It is straightforward to adapt the code to run at
various fixed rates, though we expect the rateless instantiations to be more
useful."  This module provides that fixed-rate instantiation — the sender
always transmits exactly ``n_passes`` passes and the receiver decodes once —
so spinal codes can be compared head-to-head with the fixed-rate LDPC
baselines on their own terms (frame error rate at a fixed spectral
efficiency), and so the rateless gain itself can be quantified.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.channels.awgn import AWGNChannel
from repro.core.decoder_bubble import BubbleDecoder
from repro.core.encoder import SpinalEncoder
from repro.core.params import SpinalParams
from repro.phy.fixed_rate import FixedRateSpinalCode
from repro.phy.session import CodecSession
from repro.utils.bitops import random_message_bits
from repro.utils.deprecation import warn_once

__all__ = ["FixedRateSpinalSystem", "FixedRateSpinalResult"]


@dataclass(frozen=True)
class FixedRateSpinalResult:
    """Monte-Carlo outcome of a fixed-rate spinal configuration at one SNR."""

    snr_db: float
    nominal_rate: float
    frame_error_rate: float
    bit_error_rate: float

    @property
    def achieved_rate(self) -> float:
        """Nominal rate times frame success probability (Figure 2 convention)."""
        return self.nominal_rate * (1.0 - self.frame_error_rate)


class FixedRateSpinalSystem:
    """Spinal code transmitted with a fixed number of passes (no feedback).

    Parameters
    ----------
    message_bits:
        Frame payload size in bits (must be a multiple of ``params.k``).
    n_passes:
        Number of passes always transmitted; the nominal rate is
        ``message_bits / (n_passes * message_bits / k) = k / n_passes``
        bits per symbol.
    params:
        Spinal code parameters (defaults to the paper's k=8, c=10).
    beam_width:
        Bubble-decoder beam width.
    adc_bits:
        Receiver ADC resolution (None disables quantisation).
    """

    def __init__(
        self,
        message_bits: int = 24,
        n_passes: int = 2,
        params: SpinalParams | None = None,
        beam_width: int = 16,
        adc_bits: int | None = 14,
    ) -> None:
        if n_passes < 1:
            raise ValueError(f"n_passes must be at least 1, got {n_passes}")
        self.params = params if params is not None else SpinalParams(k=8, c=10)
        self.params.n_segments(message_bits)  # validates divisibility
        self.message_bits = message_bits
        self.n_passes = n_passes
        self.beam_width = beam_width
        self.adc_bits = adc_bits
        #: Legacy compatibility attributes: frames now run through the codec
        #: session over ``_code`` below, not this encoder/decoder pair.
        self.encoder = SpinalEncoder(self.params)
        self.decoder = BubbleDecoder(self.encoder, beam_width=beam_width)
        self._code = FixedRateSpinalCode(
            message_bits,
            n_passes=n_passes,
            params=self.params,
            beam_width=beam_width,
        )

    @property
    def n_segments(self) -> int:
        return self.params.n_segments(self.message_bits)

    @property
    def symbols_per_frame(self) -> int:
        return self.n_passes * self.n_segments

    @property
    def nominal_rate(self) -> float:
        """Spectral efficiency when the frame decodes, in bits/symbol."""
        return self.message_bits / self.symbols_per_frame

    # ------------------------------------------------------------------
    def transmit_frame(
        self, snr_db: float, rng: np.random.Generator
    ) -> tuple[bool, int]:
        """Send one frame; return (frame correct, number of wrong bits).

        .. deprecated::
            This is a byte-identical shim over the ``repro.phy`` codec API:
            a :class:`~repro.phy.fixed_rate.FixedRateSpinalCode` run through
            a :class:`~repro.phy.session.CodecSession` whose budget is
            exactly one frame.  The codec spelling also supports ARQ
            retransmission, transports, relays and cells.
        """
        warn_once(
            "FixedRateSpinalSystem.transmit_frame",
            "FixedRateSpinalSystem.transmit_frame is a shim over the repro.phy "
            "codec API; prefer CodecSession(FixedRateSpinalCode(message_bits, "
            "n_passes, ...), AWGNChannel(snr_db, ...)).run(payload, rng)",
        )
        channel = AWGNChannel(
            snr_db=snr_db, signal_power=self.params.average_power, adc_bits=self.adc_bits
        )
        session = CodecSession(
            self._code,
            channel,
            termination="genie",
            max_symbols=self.symbols_per_frame,
        )
        message = random_message_bits(self.message_bits, rng)
        result = session.run(message, rng)
        wrong_bits = int(np.count_nonzero(result.decoded_payload != message))
        return wrong_bits == 0, wrong_bits

    def measure(
        self, snr_db: float, n_frames: int, rng: np.random.Generator
    ) -> FixedRateSpinalResult:
        """Monte-Carlo FER/BER of this fixed-rate configuration at one SNR."""
        if n_frames <= 0:
            raise ValueError(f"n_frames must be positive, got {n_frames}")
        frame_errors = 0
        bit_errors = 0
        for _ in range(n_frames):
            ok, wrong_bits = self.transmit_frame(snr_db, rng)
            frame_errors += int(not ok)
            bit_errors += wrong_bits
        return FixedRateSpinalResult(
            snr_db=snr_db,
            nominal_rate=self.nominal_rate,
            frame_error_rate=frame_errors / n_frames,
            bit_error_rate=bit_errors / (n_frames * self.message_bits),
        )

    def describe(self) -> str:
        return (
            f"FixedRateSpinal(m={self.message_bits}, k={self.params.k}, "
            f"passes={self.n_passes}, {self.nominal_rate:.2f} b/sym, B={self.beam_width})"
        )
