"""Baseline transmission systems the paper compares against (or motivates).

* :mod:`repro.baselines.ldpc_system` — fixed-rate LDPC + modulation
  combinations, the explicit baseline of Figure 2 (eight configurations of
  802.11n-style codes over BPSK/QAM-4/QAM-16/QAM-64).
* :mod:`repro.baselines.hybrid_arq` — LDPC with Chase-combining hybrid ARQ,
  the classic "rateless-ish" scheme built from fixed-rate codes (related
  work, references [9, 11, 14, 16] of the paper).
* :mod:`repro.baselines.rate_adaptation` — 802.11-style SNR-threshold rate
  adaptation over a time-varying channel, the "status quo" the introduction
  argues against; used by the mobility example to contrast explicit
  adaptation with the implicit adaptation of a rateless code.
* :mod:`repro.baselines.repetition` — uncoded and repetition-coded QPSK,
  a floor reference used in tests and examples.
* :mod:`repro.baselines.fixed_rate_spinal` — spinal codes run at a fixed
  number of passes (Section 3's fixed-rate instantiation), used to quantify
  how much of the spinal gain comes from ratelessness itself.
"""

from repro.baselines.fixed_rate_spinal import FixedRateSpinalSystem
from repro.baselines.hybrid_arq import HybridArqLdpcSystem
from repro.baselines.ldpc_system import FIGURE2_LDPC_CONFIGS, FixedRateLdpcSystem, LdpcConfig
from repro.baselines.rate_adaptation import RateAdaptationPolicy, ThresholdRateAdapter
from repro.baselines.repetition import RepetitionQpskSystem

__all__ = [
    "FixedRateLdpcSystem",
    "FixedRateSpinalSystem",
    "LdpcConfig",
    "FIGURE2_LDPC_CONFIGS",
    "HybridArqLdpcSystem",
    "ThresholdRateAdapter",
    "RateAdaptationPolicy",
    "RepetitionQpskSystem",
]
