"""Fixed-rate LDPC + modulation systems: the explicit baseline of Figure 2.

Each configuration pairs one of the 648-bit wifi-like LDPC codes with a
modulation, exactly like the eight curves of Figure 2:

    rate 1/2 + BPSK,  rate 1/2 + QAM-4,  rate 3/4 + QAM-4,
    rate 1/2 + QAM-16, rate 3/4 + QAM-16,
    rate 2/3 + QAM-64, rate 3/4 + QAM-64, rate 5/6 + QAM-64.

The figure plots, for each configuration, the *achieved rate* as a function
of SNR.  A fixed-rate system that fails to decode delivers nothing, so the
achieved rate is the nominal spectral efficiency multiplied by the frame
success probability:

    rate(SNR) = (code rate) * (bits per symbol) * (1 - FER(SNR)).

This is measured by Monte-Carlo simulation of full encode/modulate/AWGN/
demap/BP-decode chains.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

import numpy as np

from repro.ldpc.construction import make_wifi_like_code
from repro.ldpc.decoder import BeliefPropagationDecoder
from repro.ldpc.encoder import LDPCCode
from repro.modulation import Modulation, make_modulation
from repro.utils.units import db_to_linear

__all__ = ["LdpcConfig", "FixedRateLdpcSystem", "FIGURE2_LDPC_CONFIGS"]


@dataclass(frozen=True)
class LdpcConfig:
    """One fixed-rate PHY configuration (code rate + modulation)."""

    code_rate: Fraction
    modulation: str

    @property
    def label(self) -> str:
        return f"LDPC rate {self.code_rate} {self.modulation}"

    @property
    def nominal_rate(self) -> float:
        """Spectral efficiency when decoding succeeds, bits per symbol."""
        bits = {"BPSK": 1, "QPSK": 2, "QAM-4": 2, "QAM-16": 4, "QAM-64": 6}[self.modulation]
        return float(self.code_rate) * bits


#: The eight configurations shown in Figure 2 of the paper.
FIGURE2_LDPC_CONFIGS: tuple[LdpcConfig, ...] = (
    LdpcConfig(Fraction(1, 2), "BPSK"),
    LdpcConfig(Fraction(1, 2), "QAM-4"),
    LdpcConfig(Fraction(3, 4), "QAM-4"),
    LdpcConfig(Fraction(1, 2), "QAM-16"),
    LdpcConfig(Fraction(3, 4), "QAM-16"),
    LdpcConfig(Fraction(2, 3), "QAM-64"),
    LdpcConfig(Fraction(3, 4), "QAM-64"),
    LdpcConfig(Fraction(5, 6), "QAM-64"),
)


class FixedRateLdpcSystem:
    """End-to-end fixed-rate link: LDPC encoder, modulation, AWGN, BP decoder."""

    def __init__(
        self,
        config: LdpcConfig,
        codeword_bits: int = 648,
        max_iterations: int = 40,
        algorithm: str = "sum-product",
        code: LDPCCode | None = None,
        modulation: Modulation | None = None,
    ) -> None:
        self.config = config
        self.code = code if code is not None else make_wifi_like_code(
            config.code_rate, codeword_bits=codeword_bits
        )
        self.modulation = (
            modulation if modulation is not None else make_modulation(config.modulation)
        )
        if self.code.n % self.modulation.bits_per_symbol != 0:
            raise ValueError(
                f"codeword length {self.code.n} is not a multiple of the modulation's "
                f"{self.modulation.bits_per_symbol} bits/symbol"
            )
        self.decoder = BeliefPropagationDecoder(
            self.code, max_iterations=max_iterations, algorithm=algorithm
        )

    # ------------------------------------------------------------------
    @property
    def nominal_rate(self) -> float:
        """Bits per symbol delivered when a frame decodes correctly."""
        return self.code.rate * self.modulation.bits_per_symbol

    @property
    def symbols_per_frame(self) -> int:
        return self.code.n // self.modulation.bits_per_symbol

    # ------------------------------------------------------------------
    def transmit_frames(
        self, snr_db: float, n_frames: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Simulate ``n_frames`` independent frames; return per-frame success flags."""
        if n_frames <= 0:
            raise ValueError(f"n_frames must be positive, got {n_frames}")
        noise_energy = 1.0 / db_to_linear(snr_db)
        messages = rng.integers(0, 2, size=(n_frames, self.code.k), dtype=np.uint8)
        codewords = self.code.encode_batch(messages)

        llrs = np.empty((n_frames, self.code.n), dtype=np.float64)
        for frame in range(n_frames):
            symbols = self.modulation.modulate(codewords[frame])
            noise = np.sqrt(noise_energy / 2.0) * (
                rng.standard_normal(symbols.size) + 1j * rng.standard_normal(symbols.size)
            )
            llrs[frame] = self.modulation.demodulate_llr(symbols + noise, noise_energy)

        decoded, _ = self.decoder.decode(llrs)
        return np.array(
            [
                np.array_equal(decoded[frame, : self.code.k], messages[frame])
                for frame in range(n_frames)
            ]
        )

    def frame_error_rate(
        self, snr_db: float, n_frames: int, rng: np.random.Generator
    ) -> float:
        """Monte-Carlo frame error rate at one SNR."""
        successes = self.transmit_frames(snr_db, n_frames, rng)
        return float(1.0 - successes.mean())

    def achieved_rate(
        self, snr_db: float, n_frames: int, rng: np.random.Generator
    ) -> float:
        """The Figure 2 quantity: nominal rate times frame success probability."""
        fer = self.frame_error_rate(snr_db, n_frames, rng)
        return self.nominal_rate * (1.0 - fer)

    def describe(self) -> str:
        return (
            f"{self.config.label} (n={self.code.n}, nominal "
            f"{self.nominal_rate:.2f} b/sym, {self.decoder.max_iterations} BP iters)"
        )
