"""SNR-threshold rate adaptation: the "status quo" the paper argues against.

Section 1 describes current wireless systems as offering a menu of fixed PHY
configurations plus a reactive policy that picks one from recent channel
observations (SNR from a preamble, loss rate, etc.).  This module implements
that policy in its cleanest form so the examples can compare it with the
rateless spinal session over the same time-varying channels:

* a :class:`ThresholdRateAdapter` owns a menu of fixed-rate LDPC
  configurations and an SNR threshold per configuration (the lowest SNR at
  which its frame error rate is below a target);
* a :class:`RateAdaptationPolicy` selects, per packet, the fastest
  configuration whose threshold is below the *observed* SNR, where the
  observation can lag the true channel (staleness is the classic failure
  mode the paper points to).

:class:`RateAdaptationPolicy` is menu-agnostic: anything hashable with a
``nominal_rate`` attribute (see :class:`RateOption`) can populate it, so the
same policy drives the LDPC baseline here and the fixed-rate *spinal* menu
the multi-user cell baseline uses (:mod:`repro.mac.adaptive`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

import numpy as np

from repro.baselines.ldpc_system import FIGURE2_LDPC_CONFIGS, FixedRateLdpcSystem, LdpcConfig

__all__ = ["RateOption", "ThresholdRateAdapter", "RateAdaptationPolicy"]


@runtime_checkable
class RateOption(Protocol):
    """One entry of a rate-adaptation menu: a hashable config with a rate."""

    @property
    def nominal_rate(self) -> float:  # pragma: no cover - protocol stub
        ...


@dataclass
class RateAdaptationPolicy:
    """Pure threshold policy: pick the fastest config believed to work.

    ``thresholds`` maps each configuration to the minimum SNR (dB) at which
    it is considered usable.  If no configuration qualifies the policy falls
    back to the most robust one (lowest threshold).
    """

    configs: tuple[RateOption, ...]
    thresholds: dict[RateOption, float]

    def __post_init__(self) -> None:
        missing = [c for c in self.configs if c not in self.thresholds]
        if missing:
            raise ValueError(f"missing thresholds for configs: {missing}")

    def select(self, observed_snr_db: float) -> RateOption:
        usable = [c for c in self.configs if observed_snr_db >= self.thresholds[c]]
        if not usable:
            return min(self.configs, key=lambda c: self.thresholds[c])
        return max(usable, key=lambda c: c.nominal_rate)


class ThresholdRateAdapter:
    """Calibrates thresholds by measurement and simulates adapted transfers."""

    def __init__(
        self,
        configs: tuple[LdpcConfig, ...] = FIGURE2_LDPC_CONFIGS,
        target_frame_error_rate: float = 0.1,
        codeword_bits: int = 648,
        max_iterations: int = 40,
        algorithm: str = "min-sum",
    ) -> None:
        if not 0.0 < target_frame_error_rate < 1.0:
            raise ValueError(
                f"target FER must be in (0, 1), got {target_frame_error_rate}"
            )
        self.configs = configs
        self.target_frame_error_rate = target_frame_error_rate
        self.systems = {
            config: FixedRateLdpcSystem(
                config,
                codeword_bits=codeword_bits,
                max_iterations=max_iterations,
                algorithm=algorithm,
            )
            for config in configs
        }

    # ------------------------------------------------------------------
    def calibrate(
        self,
        snr_grid_db: np.ndarray,
        n_frames: int,
        rng: np.random.Generator,
    ) -> RateAdaptationPolicy:
        """Measure FER curves on a grid and derive per-config SNR thresholds.

        The threshold of a configuration is the lowest grid SNR at which its
        measured FER is at or below the target; configurations that never
        reach the target get an infinite threshold (never selected).
        """
        snr_grid_db = np.asarray(snr_grid_db, dtype=np.float64)
        if snr_grid_db.ndim != 1 or snr_grid_db.size == 0:
            raise ValueError("snr_grid_db must be a non-empty 1-D array")
        thresholds: dict[LdpcConfig, float] = {}
        for config, system in self.systems.items():
            threshold = float("inf")
            for snr_db in np.sort(snr_grid_db):
                fer = system.frame_error_rate(float(snr_db), n_frames, rng)
                if fer <= self.target_frame_error_rate:
                    threshold = float(snr_db)
                    break
            thresholds[config] = threshold
        return RateAdaptationPolicy(configs=self.configs, thresholds=thresholds)

    # ------------------------------------------------------------------
    def simulate_adaptive_transfer(
        self,
        policy: RateAdaptationPolicy,
        true_snr_per_packet_db: np.ndarray,
        observation_lag_packets: int,
        n_frames_per_packet: int,
        rng: np.random.Generator,
    ) -> dict:
        """Run threshold adaptation over a sequence of per-packet true SNRs.

        The policy sees the true SNR ``observation_lag_packets`` packets ago
        (the first packets see the first value), selects a configuration,
        and the achieved rate of the packet is measured at the *true* SNR.

        Returns a dict with per-packet selected configs, achieved rates, and
        the mean achieved rate — the quantity the mobility example compares
        against the spinal session.
        """
        true_snr_per_packet_db = np.asarray(true_snr_per_packet_db, dtype=np.float64)
        if observation_lag_packets < 0:
            raise ValueError("observation_lag_packets must be non-negative")
        selected: list[LdpcConfig] = []
        rates: list[float] = []
        for index, true_snr in enumerate(true_snr_per_packet_db):
            observed_index = max(0, index - observation_lag_packets)
            observed_snr = float(true_snr_per_packet_db[observed_index])
            config = policy.select(observed_snr)
            system = self.systems[config]
            rate = system.achieved_rate(float(true_snr), n_frames_per_packet, rng)
            selected.append(config)
            rates.append(rate)
        return {
            "selected": selected,
            "rates": np.array(rates),
            "mean_rate": float(np.mean(rates)),
        }
