"""Deterministic random-number management.

Experiments in this library are Monte-Carlo simulations; reproducibility
requires that every trial be derivable from a single top-level seed.  The
helpers here derive child seeds and child generators from a parent seed plus
a string label, so independent subsystems (message source, channel noise,
code construction) never share a stream by accident.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["derive_seed", "spawn_rng"]


def derive_seed(base_seed: int, *labels: object) -> int:
    """Derive a 63-bit child seed from ``base_seed`` and a sequence of labels.

    The derivation hashes the textual representation of the labels so that
    e.g. ``derive_seed(s, "trial", 12)`` and ``derive_seed(s, "trial", 13)``
    are statistically independent, and insertion of new label positions does
    not shift existing streams.
    """
    payload = repr((int(base_seed),) + tuple(str(label) for label in labels)).encode()
    digest = hashlib.blake2b(payload, digest_size=8).digest()
    return int.from_bytes(digest, "little") & ((1 << 63) - 1)


def spawn_rng(base_seed: int, *labels: object) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` seeded via :func:`derive_seed`."""
    return np.random.default_rng(derive_seed(base_seed, *labels))
