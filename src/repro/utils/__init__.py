"""Shared utilities for the spinal-code reproduction.

The helpers here are deliberately small and dependency-free (beyond numpy):
bit packing/unpacking used by the encoder and the LDPC substrate, decibel
conversions, seeded RNG management, and light-weight result containers used
by the experiment harness.
"""

from repro.utils.bitops import (
    bits_to_int,
    bits_to_bytes,
    bytes_to_bits,
    int_to_bits,
    pack_segments,
    random_message_bits,
    unpack_segments,
)
from repro.utils.results import RateMeasurement, SweepResult, render_table
from repro.utils.rng import derive_seed, spawn_rng
from repro.utils.units import db_to_linear, ebn0_to_snr_db, linear_to_db, snr_db_to_ebn0

__all__ = [
    "bits_to_int",
    "bits_to_bytes",
    "bytes_to_bits",
    "int_to_bits",
    "pack_segments",
    "unpack_segments",
    "random_message_bits",
    "RateMeasurement",
    "SweepResult",
    "render_table",
    "derive_seed",
    "spawn_rng",
    "db_to_linear",
    "linear_to_db",
    "ebn0_to_snr_db",
    "snr_db_to_ebn0",
]
