"""Minimal ASCII line plots for terminal-only environments.

The benchmark harness and examples run without matplotlib (and often over
ssh), so the figure-shaped results are easier to eyeball as a quick ASCII
chart next to the exact numeric table.  This is intentionally tiny: multiple
named series over a shared x axis, rendered onto a character grid.
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["ascii_plot"]

_MARKERS = "*o+x#@%&"


def ascii_plot(
    x_values: Sequence[float],
    series: Mapping[str, Sequence[float]],
    width: int = 64,
    height: int = 18,
    x_label: str = "x",
    y_label: str = "y",
    connect: bool = False,
) -> str:
    """Render one or more series as an ASCII chart.

    Parameters
    ----------
    x_values:
        Shared x coordinates (need not be uniformly spaced).
    series:
        Mapping from series name to y values (same length as ``x_values``).
    width, height:
        Plot area size in characters (excluding axes and labels).
    connect:
        Also draw interpolated line segments between a series' consecutive
        points (with the series' own marker), so sparse multi-series charts
        — one curve per scheduler, say — read as curves rather than
        scattered dots.  Segments never overwrite an occupied cell; the
        exact data points are drawn last and always win.
    """
    if width < 8 or height < 4:
        raise ValueError("plot area must be at least 8x4 characters")
    if not series:
        raise ValueError("at least one series is required")
    x_list = [float(x) for x in x_values]
    if len(x_list) < 2:
        raise ValueError("at least two x values are required")
    for name, y_values in series.items():
        if len(y_values) != len(x_list):
            raise ValueError(
                f"series {name!r} has {len(y_values)} values but there are "
                f"{len(x_list)} x values"
            )

    all_y = [float(y) for ys in series.values() for y in ys]
    y_min, y_max = min(all_y), max(all_y)
    if y_max == y_min:
        y_max = y_min + 1.0
    x_min, x_max = min(x_list), max(x_list)
    if x_max == x_min:
        x_max = x_min + 1.0

    grid = [[" "] * width for _ in range(height)]

    def to_column(x: float) -> int:
        return int(round((x - x_min) / (x_max - x_min) * (width - 1)))

    def to_row(y: float) -> int:
        return int(round((1.0 - (y - y_min) / (y_max - y_min)) * (height - 1)))

    for index, (name, y_values) in enumerate(series.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        points = [
            (to_column(x), to_row(float(y))) for x, y in zip(x_list, y_values)
        ]
        if connect:
            for (c0, r0), (c1, r1) in zip(points, points[1:]):
                if c1 < c0:
                    c0, r0, c1, r1 = c1, r1, c0, r0
                span = c1 - c0
                for column in range(c0, c1 + 1):
                    t = 0.0 if span == 0 else (column - c0) / span
                    row = int(round(r0 + t * (r1 - r0)))
                    if grid[row][column] == " ":
                        grid[row][column] = marker
        for column, row in points:
            grid[row][column] = marker

    lines = []
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = f"{y_max:8.2f} |"
        elif row_index == height - 1:
            label = f"{y_min:8.2f} |"
        else:
            label = " " * 9 + "|"
        lines.append(label + "".join(row))
    lines.append(" " * 9 + "+" + "-" * width)
    lines.append(
        " " * 10 + f"{x_min:<10.1f}" + " " * max(0, width - 20) + f"{x_max:>10.1f}  ({x_label})"
    )
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {name}" for i, name in enumerate(series)
    )
    lines.append(f"  {y_label}:  {legend}")
    return "\n".join(lines)
