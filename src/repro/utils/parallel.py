"""Order-preserving process fan-out shared by the Monte-Carlo runners.

Both the trial runner (:mod:`repro.experiments.runner`) and the transport
sweep (:mod:`repro.experiments.transport_sweep`) promise the same contract:
``n_workers`` is purely a wall-clock knob — every work item derives its
randomness from ``(seed, labels...)`` irrespective of worker assignment, and
results are re-assembled in item order, so any worker count reproduces the
serial run exactly.  This module centralises the batching/reassembly half of
that contract so the two runners cannot drift apart.

Round-robin (strided) batching is deliberate: adjacent items usually have
similar expected cost (neighbouring trials, neighbouring grid points), so
striding balances the load across workers.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Sequence, TypeVar

Item = TypeVar("Item")
Result = TypeVar("Result")

__all__ = ["stride_map"]


def stride_map(
    batch_fn: Callable[[list[tuple[int, Item]]], list[tuple[int, Result]]],
    items: Sequence[Item],
    n_workers: int,
) -> list[Result]:
    """Map ``batch_fn`` over ``items`` with round-robin process batching.

    ``batch_fn`` receives a list of ``(index, item)`` pairs and returns a
    list of ``(index, result)`` pairs; it must be picklable (a top-level
    function, possibly wrapped in :func:`functools.partial`) so it survives
    any multiprocessing start method.  Results are returned in item order
    regardless of batching, and ``n_workers=1`` (or a single item) runs
    inline with no process pool.
    """
    indexed = list(enumerate(items))
    n_workers = min(n_workers, len(indexed))
    if n_workers <= 1:
        pairs = batch_fn(indexed)
    else:
        batches = [indexed[start::n_workers] for start in range(n_workers)]
        with ProcessPoolExecutor(max_workers=n_workers) as pool:
            futures = [pool.submit(batch_fn, batch) for batch in batches]
            pairs = [pair for future in futures for pair in future.result()]
    pairs = sorted(pairs, key=lambda pair: pair[0])
    return [result for _, result in pairs]
