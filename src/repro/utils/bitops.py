"""Bit-level helpers shared across the encoder, decoder, and LDPC substrate.

All functions operate on numpy arrays of dtype ``uint8`` holding one bit per
element (values 0 or 1), which is the internal bit representation used
throughout the library.  Integers produced and consumed by these helpers use
Python ``int`` or numpy ``uint64`` and always follow an MSB-first convention:
``bits_to_int([1, 0, 1]) == 0b101 == 5``.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "bits_to_int",
    "int_to_bits",
    "bits_to_bytes",
    "bytes_to_bits",
    "pack_segments",
    "unpack_segments",
    "random_message_bits",
    "hamming_distance",
    "parity",
]


def bits_to_int(bits: np.ndarray) -> int:
    """Interpret a bit vector (MSB first) as an unsigned integer.

    Parameters
    ----------
    bits:
        1-D array-like of 0/1 values.

    Returns
    -------
    int
        The integer whose binary representation (MSB first) is ``bits``.
    """
    bits = np.asarray(bits, dtype=np.uint8)
    if bits.ndim != 1:
        raise ValueError(f"bits_to_int expects a 1-D array, got shape {bits.shape}")
    value = 0
    for bit in bits:
        value = (value << 1) | int(bit)
    return value


def int_to_bits(value: int, width: int) -> np.ndarray:
    """Return the ``width``-bit MSB-first binary representation of ``value``.

    Raises
    ------
    ValueError
        If ``value`` is negative or does not fit in ``width`` bits.
    """
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    if value < 0:
        raise ValueError(f"value must be non-negative, got {value}")
    if value >= (1 << width):
        raise ValueError(f"value {value} does not fit in {width} bits")
    out = np.empty(width, dtype=np.uint8)
    for i in range(width):
        out[width - 1 - i] = (value >> i) & 1
    return out


def bits_to_bytes(bits: np.ndarray) -> bytes:
    """Pack a bit vector (length divisible by 8, MSB first) into bytes."""
    bits = np.asarray(bits, dtype=np.uint8)
    if bits.size % 8 != 0:
        raise ValueError(f"bit length {bits.size} is not a multiple of 8")
    return np.packbits(bits).tobytes()


def bytes_to_bits(data: bytes) -> np.ndarray:
    """Unpack bytes into a bit vector (MSB first within each byte)."""
    return np.unpackbits(np.frombuffer(data, dtype=np.uint8)).astype(np.uint8)


def pack_segments(bits: np.ndarray, k: int) -> np.ndarray:
    """Split a message into consecutive ``k``-bit segments encoded as integers.

    This is the segmentation step of the spinal encoder (Section 3.1 of the
    paper): ``M = M_1, M_2, ..., M_{n/k}``.  The message length must be a
    multiple of ``k`` (the framing layer pads if necessary).

    Returns
    -------
    numpy.ndarray
        1-D ``uint64`` array of length ``len(bits) // k`` where entry ``t`` is
        the integer value of segment ``M_{t+1}`` (MSB first).
    """
    bits = np.asarray(bits, dtype=np.uint8)
    if bits.ndim != 1:
        raise ValueError(f"pack_segments expects a 1-D bit array, got shape {bits.shape}")
    if k <= 0 or k > 63:
        raise ValueError(f"segment size k must be in [1, 63], got {k}")
    if bits.size % k != 0:
        raise ValueError(f"message length {bits.size} is not a multiple of k={k}")
    segments = bits.reshape(-1, k).astype(np.uint64)
    weights = (np.uint64(1) << np.arange(k - 1, -1, -1, dtype=np.uint64)).astype(np.uint64)
    return (segments * weights).sum(axis=1, dtype=np.uint64)


def unpack_segments(segments: np.ndarray, k: int) -> np.ndarray:
    """Inverse of :func:`pack_segments`: expand segment integers into bits."""
    segments = np.asarray(segments, dtype=np.uint64)
    if segments.ndim != 1:
        raise ValueError(f"unpack_segments expects a 1-D array, got shape {segments.shape}")
    if k <= 0 or k > 63:
        raise ValueError(f"segment size k must be in [1, 63], got {k}")
    if segments.size and int(segments.max()) >= (1 << k):
        raise ValueError(f"segment value {int(segments.max())} does not fit in k={k} bits")
    shifts = np.arange(k - 1, -1, -1, dtype=np.uint64)
    bits = (segments[:, None] >> shifts[None, :]) & np.uint64(1)
    return bits.astype(np.uint8).reshape(-1)


def random_message_bits(n_bits: int, rng: np.random.Generator) -> np.ndarray:
    """Draw a uniformly random message of ``n_bits`` bits."""
    if n_bits <= 0:
        raise ValueError(f"n_bits must be positive, got {n_bits}")
    return rng.integers(0, 2, size=n_bits, dtype=np.uint8)


def hamming_distance(a: np.ndarray, b: np.ndarray) -> int:
    """Number of positions in which two equal-length bit vectors differ."""
    a = np.asarray(a, dtype=np.uint8)
    b = np.asarray(b, dtype=np.uint8)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    return int(np.count_nonzero(a != b))


def parity(bits: np.ndarray) -> int:
    """XOR of all bits (0 or 1)."""
    return int(np.bitwise_xor.reduce(np.asarray(bits, dtype=np.uint8))) & 1
