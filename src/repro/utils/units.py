"""Decibel and SNR unit conversions.

Conventions used throughout the library (matching the paper's Figure 2):

* SNR is the ratio of the *average transmitted symbol energy per complex
  (two-dimensional) symbol* to the *total noise energy per complex symbol*.
* The AWGN capacity quoted against that SNR is therefore the two-dimensional
  capacity ``log2(1 + SNR)`` bits per symbol (e.g. roughly 10 bits/symbol at
  30 dB, exactly as stated in Section 4 of the paper).
"""

from __future__ import annotations

import math

__all__ = ["db_to_linear", "linear_to_db", "snr_db_to_ebn0", "ebn0_to_snr_db"]


def db_to_linear(value_db: float) -> float:
    """Convert a decibel power ratio to a linear power ratio."""
    return 10.0 ** (value_db / 10.0)


def linear_to_db(value: float) -> float:
    """Convert a linear power ratio to decibels.

    Raises
    ------
    ValueError
        If ``value`` is not strictly positive.
    """
    if value <= 0:
        raise ValueError(f"cannot convert non-positive ratio {value!r} to dB")
    return 10.0 * math.log10(value)


def snr_db_to_ebn0(snr_db: float, bits_per_symbol: float) -> float:
    """Convert symbol SNR (dB) to Eb/N0 (dB) at a given spectral efficiency."""
    if bits_per_symbol <= 0:
        raise ValueError(f"bits_per_symbol must be positive, got {bits_per_symbol}")
    return snr_db - linear_to_db(bits_per_symbol)


def ebn0_to_snr_db(ebn0_db: float, bits_per_symbol: float) -> float:
    """Convert Eb/N0 (dB) to symbol SNR (dB) at a given spectral efficiency."""
    if bits_per_symbol <= 0:
        raise ValueError(f"bits_per_symbol must be positive, got {bits_per_symbol}")
    return ebn0_db + linear_to_db(bits_per_symbol)
