"""Once-per-process deprecation warnings for compatibility shims.

The legacy entry points (``RatelessSession.run``, ``simulate_link_session``,
the baselines' ``run_trial``-style methods) remain as byte-identical shims
over the ``repro.phy`` codec API.  Each emits exactly one
:class:`DeprecationWarning` per process — enough to steer readers to the new
spelling without drowning sweep logs that call a shim millions of times.
"""

from __future__ import annotations

import warnings

__all__ = ["warn_once", "reset_warnings"]

_WARNED: set[str] = set()


def warn_once(key: str, message: str) -> None:
    """Emit ``message`` as a DeprecationWarning the first time ``key`` is seen."""
    if key in _WARNED:
        return
    _WARNED.add(key)
    warnings.warn(message, DeprecationWarning, stacklevel=3)


def reset_warnings() -> None:
    """Forget which keys have warned (test hook)."""
    _WARNED.clear()
