"""Light-weight result containers and text rendering for experiments.

The benchmark harness regenerates the paper's figure as *text tables* (one
row per SNR point, one column per curve).  These containers keep the raw
per-trial measurements together with their aggregates so that tests can make
assertions about distributions, not just means.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

__all__ = [
    "RateMeasurement",
    "SweepResult",
    "render_table",
    "mean",
    "std_error",
    "RESULTS_SCHEMA_VERSION",
]

#: Version of the ``to_dict``/``from_dict`` serialization layout; bumped on
#: incompatible changes so persisted documents are never misread.
RESULTS_SCHEMA_VERSION = 1


def _check_schema_version(data: Mapping, expected_kind: str) -> None:
    version = data.get("schema_version")
    if version != RESULTS_SCHEMA_VERSION:
        raise ValueError(
            f"cannot load {expected_kind}: schema_version {version!r} "
            f"(supported: {RESULTS_SCHEMA_VERSION})"
        )


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean, raising on empty input instead of returning NaN."""
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def std_error(values: Sequence[float]) -> float:
    """Standard error of the mean (0.0 for a single sample)."""
    if not values:
        raise ValueError("std_error of empty sequence")
    if len(values) == 1:
        return 0.0
    mu = mean(values)
    var = sum((v - mu) ** 2 for v in values) / (len(values) - 1)
    return math.sqrt(var / len(values))


@dataclass
class RateMeasurement:
    """Aggregate of rateless-code trials at a single operating point.

    Attributes
    ----------
    snr_db:
        Operating SNR in dB (or ``None`` for channels without an SNR, e.g.
        a BSC where ``param`` carries the crossover probability).
    param:
        Free-form operating parameter (e.g. BSC crossover probability).
    rates:
        Achieved rate of each trial, in message bits per channel use
        (bits/symbol for AWGN, bits/channel-bit for BSC).
    symbols_sent:
        Number of channel uses needed in each trial.
    decoded_ok:
        Whether each trial terminated with the correct message.
    """

    snr_db: float | None
    rates: list[float] = field(default_factory=list)
    symbols_sent: list[int] = field(default_factory=list)
    decoded_ok: list[bool] = field(default_factory=list)
    param: float | None = None

    def add_trial(self, rate: float, symbols: int, ok: bool) -> None:
        """Record the outcome of one rateless transmission."""
        self.rates.append(float(rate))
        self.symbols_sent.append(int(symbols))
        self.decoded_ok.append(bool(ok))

    @property
    def n_trials(self) -> int:
        return len(self.rates)

    @property
    def mean_rate(self) -> float:
        """Mean achieved rate over all trials (the quantity plotted in Fig. 2)."""
        return mean(self.rates)

    @property
    def rate_std_error(self) -> float:
        return std_error(self.rates)

    @property
    def aggregate_rate(self) -> float:
        """Total-bits-over-total-symbols rate (ratio of means).

        The per-trial mean rate (mean of ratios) can sit slightly above
        channel capacity for very short messages because lucky trials stop
        early; the aggregate rate weights every channel use equally and is
        the right quantity for long-run throughput comparisons.  Requires
        ``symbols_sent`` and ``rates`` to describe the same trials.
        """
        total_symbols = sum(self.symbols_sent)
        if total_symbols == 0:
            raise ValueError("no symbols recorded; aggregate rate undefined")
        total_bits = sum(r * s for r, s in zip(self.rates, self.symbols_sent))
        return total_bits / total_symbols

    @property
    def success_fraction(self) -> float:
        if not self.decoded_ok:
            raise ValueError("no trials recorded")
        return sum(self.decoded_ok) / len(self.decoded_ok)

    # -- serialization -------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-native representation (round-trips through :meth:`from_dict`)."""
        return {
            "schema_version": RESULTS_SCHEMA_VERSION,
            "snr_db": self.snr_db,
            "param": self.param,
            "rates": list(self.rates),
            "symbols_sent": list(self.symbols_sent),
            "decoded_ok": list(self.decoded_ok),
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "RateMeasurement":
        """Rebuild a measurement from :meth:`to_dict` output."""
        _check_schema_version(data, "RateMeasurement")
        measurement = cls(
            snr_db=data["snr_db"],
            param=data.get("param"),
        )
        lengths = {len(data["rates"]), len(data["symbols_sent"]), len(data["decoded_ok"])}
        if len(lengths) != 1:
            raise ValueError("rates/symbols_sent/decoded_ok must have equal lengths")
        for rate, symbols, ok in zip(
            data["rates"], data["symbols_sent"], data["decoded_ok"]
        ):
            measurement.add_trial(rate, symbols, ok)
        return measurement


@dataclass
class SweepResult:
    """A named curve: one :class:`RateMeasurement` per x-axis point."""

    name: str
    points: list[RateMeasurement] = field(default_factory=list)
    metadata: dict = field(default_factory=dict)

    def add_point(self, point: RateMeasurement) -> None:
        self.points.append(point)

    def x_values(self) -> list[float]:
        return [p.snr_db if p.snr_db is not None else (p.param or 0.0) for p in self.points]

    def mean_rates(self) -> list[float]:
        return [p.mean_rate for p in self.points]

    def as_rows(self) -> list[tuple[float, float, float]]:
        """Rows of (x, mean rate, std error) for table rendering."""
        return [
            (x, p.mean_rate, p.rate_std_error)
            for x, p in zip(self.x_values(), self.points)
        ]

    # -- serialization -------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-native representation (round-trips through :meth:`from_dict`).

        Metadata values that are not JSON-serializable (e.g. a
        :class:`~repro.experiments.runner.SpinalRunConfig`) are stored as
        their ``repr`` — the curve data itself always round-trips exactly.
        """
        metadata = {}
        for key, value in self.metadata.items():
            try:
                json.dumps(value)
            except (TypeError, ValueError):
                value = repr(value)
            metadata[str(key)] = value
        return {
            "schema_version": RESULTS_SCHEMA_VERSION,
            "name": self.name,
            "points": [point.to_dict() for point in self.points],
            "metadata": metadata,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "SweepResult":
        """Rebuild a sweep from :meth:`to_dict` output."""
        _check_schema_version(data, "SweepResult")
        return cls(
            name=data["name"],
            points=[RateMeasurement.from_dict(point) for point in data["points"]],
            metadata=dict(data.get("metadata", {})),
        )


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    float_format: str = "{:.3f}",
) -> str:
    """Render rows as a fixed-width text table (used by the bench harness).

    Numbers are formatted with ``float_format``; other values via ``str``.
    """
    formatted_rows: list[list[str]] = []
    for row in rows:
        formatted: list[str] = []
        for cell in row:
            if isinstance(cell, bool) or not isinstance(cell, (int, float)):
                formatted.append(str(cell))
            elif isinstance(cell, int):
                formatted.append(str(cell))
            else:
                formatted.append(float_format.format(cell))
        formatted_rows.append(formatted)

    widths = [len(h) for h in headers]
    for row in formatted_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    lines = [fmt_line(list(headers)), fmt_line(["-" * w for w in widths])]
    lines.extend(fmt_line(row) for row in formatted_rows)
    return "\n".join(lines)


def curves_to_table(curves: Mapping[str, SweepResult], x_label: str = "x") -> str:
    """Merge several sweeps sharing x values into a single text table."""
    if not curves:
        raise ValueError("no curves supplied")
    names = list(curves)
    xs = curves[names[0]].x_values()
    for name in names[1:]:
        if curves[name].x_values() != xs:
            raise ValueError(f"curve {name!r} has mismatching x values")
    headers = [x_label] + names
    rows = []
    for i, x in enumerate(xs):
        rows.append([x] + [curves[name].points[i].mean_rate for name in names])
    return render_table(headers, rows)
