"""Versioned JSON results store for registry experiment runs.

Every engine run persists one JSON document per resolved specification,
named ``<experiment>-<spec_hash[:12]>.json``.  The document is written with
sorted keys and a fixed layout so that *identical measurements produce
byte-identical files* — the registry's worker-count-invariance test
compares the stored bytes of a ``--workers 1`` and a ``--workers 4`` run
directly.

The store is also the cache: before computing, the engine asks the store
for an exact-hash record (full resume — nothing recomputed) and, failing
that, for cells from *compatible* sibling runs of the same experiment
(same fixed parameters, trial count, and seed; only the axis values
differ), so extending a sweep grid re-uses every already-measured cell.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Iterator, Mapping

__all__ = ["RunStore", "STORE_SCHEMA_VERSION", "read_run"]

#: Version of the persisted run-record layout.
STORE_SCHEMA_VERSION = 1


def read_run(path: str | Path) -> dict:
    """Load and validate one persisted run record."""
    with open(path, "r", encoding="utf-8") as handle:
        record = json.load(handle)
    if not isinstance(record, dict) or "schema_version" not in record:
        raise ValueError(f"{path}: not a run record (missing schema_version)")
    version = record["schema_version"]
    if version != STORE_SCHEMA_VERSION:
        raise ValueError(
            f"{path}: schema_version {version} is not supported "
            f"(expected {STORE_SCHEMA_VERSION})"
        )
    for field in ("experiment", "spec", "spec_hash", "cells"):
        if field not in record:
            raise ValueError(f"{path}: run record is missing {field!r}")
    return record


class RunStore:
    """Directory of persisted experiment runs, keyed by spec content hash."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    def path_for(self, experiment: str, spec_hash: str) -> Path:
        return self.root / f"{experiment}-{spec_hash[:12]}.json"

    def save(self, record: Mapping) -> Path:
        """Persist one run record; the write is deterministic and atomic.

        ``sort_keys`` plus a fixed indent make re-saving the same
        measurements produce the same bytes; the temp-file rename keeps a
        crashed run from leaving a truncated record that would poison the
        cache.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path_for(record["experiment"], record["spec_hash"])
        payload = json.dumps(record, sort_keys=True, indent=1) + "\n"
        tmp_path = path.with_suffix(".json.tmp")
        with open(tmp_path, "w", encoding="utf-8") as handle:
            handle.write(payload)
        os.replace(tmp_path, path)
        return path

    def load_exact(self, experiment: str, spec_hash: str) -> dict | None:
        """Return the record for this exact spec hash, or None."""
        path = self.path_for(experiment, spec_hash)
        if not path.exists():
            return None
        return read_run(path)

    def iter_records(self, experiment: str) -> Iterator[dict]:
        """Yield every readable record of one experiment, any spec hash."""
        if not self.root.is_dir():
            return
        for path in sorted(self.root.glob(f"{experiment}-*.json")):
            try:
                record = read_run(path)
            except (ValueError, json.JSONDecodeError, OSError):
                continue
            if record["experiment"] == experiment:
                yield record
