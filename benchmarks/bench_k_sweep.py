"""E6: the segment size k — rate ceiling versus decoder cost.

Section 3.1: decoder complexity is exponential in k while the maximum rate
grows linearly with k.  This bench sweeps k at a fixed SNR and message
length, reporting both the achieved rate and the number of tree nodes the
decoder evaluated per delivered message.
"""

from __future__ import annotations

from _bench_utils import bench_trials

from repro.experiments.k_sweep import k_sweep_experiment, k_sweep_table


def _run():
    return k_sweep_experiment(
        k_values=(2, 3, 4, 6, 8),
        snr_db=15.0,
        payload_bits=24,
        n_trials=bench_trials(25),
    )


def test_k_sweep(benchmark, reporter):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    reporter.add("Segment size sweep — rate and decoder cost vs k (E6)", k_sweep_table(rows))
