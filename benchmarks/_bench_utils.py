"""Helpers shared by the benchmark modules (fidelity knobs via environment).

Two environment variables control the fidelity/runtime trade-off:

* ``REPRO_BENCH_TRIALS`` — Monte-Carlo trials per spinal operating point
  (default 30; EXPERIMENTS.md numbers use the default).
* ``REPRO_BENCH_LDPC_FRAMES`` — frames per LDPC (SNR, config) point
  (default 40).
"""

from __future__ import annotations

import os

__all__ = ["bench_trials", "bench_ldpc_frames"]


def bench_trials(default: int = 30) -> int:
    """Number of Monte-Carlo trials per spinal measurement point."""
    return int(os.environ.get("REPRO_BENCH_TRIALS", default))


def bench_ldpc_frames(default: int = 40) -> int:
    """Number of frames per LDPC Monte-Carlo point."""
    return int(os.environ.get("REPRO_BENCH_LDPC_FRAMES", default))
