"""Helpers shared by the benchmark modules (fidelity knobs via environment).

Environment variables control the fidelity/runtime trade-off:

* ``REPRO_BENCH_TRIALS`` — Monte-Carlo trials per spinal operating point
  (default 30; EXPERIMENTS.md numbers use the default).
* ``REPRO_BENCH_LDPC_FRAMES`` — frames per LDPC (SNR, config) point
  (default 40).
* ``REPRO_BENCH_WORKERS`` — worker processes for the parallel trial runner
  (default 2; per-trial seeding keeps results identical for any count).
* ``REPRO_BENCH_SMOKE`` — set to ``1`` for a fast CI smoke run: every knob
  above collapses to its minimum useful value.
"""

from __future__ import annotations

import os

__all__ = ["bench_trials", "bench_ldpc_frames", "bench_workers", "bench_smoke"]


def bench_smoke() -> bool:
    """Whether the suite runs in CI smoke mode (minimum fidelity, fast)."""
    return os.environ.get("REPRO_BENCH_SMOKE", "") == "1"


def bench_trials(default: int = 30) -> int:
    """Number of Monte-Carlo trials per spinal measurement point."""
    if bench_smoke():
        default = min(default, 3)
    return int(os.environ.get("REPRO_BENCH_TRIALS", default))


def bench_ldpc_frames(default: int = 40) -> int:
    """Number of frames per LDPC Monte-Carlo point."""
    if bench_smoke():
        default = min(default, 5)
    return int(os.environ.get("REPRO_BENCH_LDPC_FRAMES", default))


def bench_workers(default: int = 2) -> int:
    """Worker processes for parallel-runner benchmarks."""
    if bench_smoke():
        default = min(default, 2)
    return int(os.environ.get("REPRO_BENCH_WORKERS", default))
