"""E12: LDPC decoder budget ablation (the baseline uses 40 BP iterations).

Sweeps the belief-propagation iteration budget and algorithm for the
rate-1/2 BPSK configuration near its waterfall, confirming the Figure 2
baseline is decoded with an adequate (indeed saturating) budget.
"""

from __future__ import annotations

from _bench_utils import bench_ldpc_frames

from repro.experiments.ldpc_ablation import ldpc_iteration_experiment, ldpc_iteration_table


def _run():
    return ldpc_iteration_experiment(
        snr_db=0.0,
        iteration_budgets=(5, 10, 20, 40, 80),
        algorithms=("sum-product", "min-sum"),
        n_frames=max(40, bench_ldpc_frames()),
    )


def test_ldpc_iteration_budget(benchmark, reporter):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    reporter.add("LDPC decoder ablation — FER vs BP iterations (E12)", ldpc_iteration_table(rows))
