"""E15: measured goodput of the sliding-window ARQ transport over relays.

The closed-form feedback models (E13) assume their overhead; the event-driven
transport *measures* it from protocol dynamics.  This benchmark regenerates
the E15 grid — ARQ policy x window x feedback RTT x hop count — and asserts
the two anchor equivalences that pin the simulator to the rest of the
library:

* with a zero-delay lossless reverse channel, selective-repeat (any window)
  and go-back-N (window 1) spend exactly the symbols the decoders needed —
  ``symbol_efficiency == 1.0``, i.e. :class:`PerfectFeedback` accounting;
* windowing must recover goodput under feedback delay: at the largest
  swept RTT, selective-repeat with the widest window must beat window 1.

The pytest-benchmark fixture wraps the full sweep, so the harness doubles as
a performance regression test for the event-driven simulator itself.
"""

from __future__ import annotations

from _bench_utils import bench_smoke, bench_workers
from repro.core.params import SpinalParams
from repro.experiments.transport_sweep import (
    TransportSweepConfig,
    run_transport_sweep,
    transport_sweep_table,
)


def _sweep_config() -> TransportSweepConfig:
    if bench_smoke():
        return TransportSweepConfig(
            payload_bits=16,
            params=SpinalParams(k=4, c=6, seed=31),
            beam_width=8,
            snr_db=10.0,
            n_packets=4,
            windows=(1, 2),
            ack_delays=(0, 16),
            hop_counts=(1, 2),
            max_symbols=512,
            n_workers=bench_workers(),
        )
    return TransportSweepConfig(
        snr_db=8.0,
        n_packets=8,
        windows=(1, 2, 4),
        ack_delays=(0, 8, 32),
        hop_counts=(1, 2, 3),
        n_workers=bench_workers(),
    )


def test_transport_goodput_grid(benchmark, reporter):
    config = _sweep_config()
    rows = benchmark(run_transport_sweep, config)

    for row in rows:
        assert row.n_delivered == row.n_packets, row
        if row.ack_delay == 0 and (row.protocol == "selective-repeat" or row.window == 1):
            # The PerfectFeedback anchor: nothing spent beyond what the
            # decoders needed.
            assert row.symbol_efficiency == 1.0, row

    max_delay = max(config.ack_delays)
    for hops in config.hop_counts:
        sr = {
            row.window: row.goodput
            for row in rows
            if row.hops == hops
            and row.protocol == "selective-repeat"
            and row.ack_delay == max_delay
        }
        assert sr[max(config.windows)] > sr[1], (hops, sr)

    reporter.add(
        "Transport goodput (E15) — sliding-window ARQ over relay chains",
        transport_sweep_table(rows)
        + f"\n(workers={config.n_workers}; goodput in payload bits per symbol-time "
        "of pipelined wall-clock; efficiency is needed/spent symbols)",
    )
