"""E3 (Theorem 1): the measured capacity gap versus the Δ ≈ 0.25 bit bound.

Theorem 1 guarantees rates of ``C − ½ log2(πe/6)`` with ML decoding; this
bench measures the practical decoder's gap to capacity across SNR and
reports whether it does at least as well as the theorem's guarantee (the
paper notes it does better at low SNR).
"""

from __future__ import annotations

from _bench_utils import bench_trials

from repro.experiments.runner import SpinalRunConfig
from repro.experiments.theorems import theorem1_gap_experiment, theorem1_table


def _run():
    config = SpinalRunConfig(payload_bits=32, n_trials=bench_trials())
    return theorem1_gap_experiment(
        snr_values_db=(-5.0, 0.0, 5.0, 10.0, 15.0, 20.0), config=config
    )


def test_theorem1_capacity_gap(benchmark, reporter):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    reporter.add("Theorem 1 — AWGN capacity gap (E3)", theorem1_table(rows))
