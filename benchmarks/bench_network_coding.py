"""E20: medium uses saved by XOR two-way relaying over rateless codes.

The network-coding claim, measured: a two-way exchange through a relay
costs three rateless phases with XOR coding (two uplinks plus *one*
broadcast downlink both endpoints decode and un-XOR) versus the four
phases of two one-way exchanges.  At a symmetric operating point every
phase costs the same symbols — the shared-code-seed fairness discipline
of :mod:`repro.netcode.twoway` — so the ideal saving is exactly 25% of
total medium uses, and the per-family pins below assert the measured
symbol counts, not just the ratio.

Asserted for the spinal *and* LT families:

* the XOR scheme uses **strictly fewer** total medium uses than two
  one-way exchanges at symmetric SNR;
* the pinned (xor, baseline) symbol counts at the fixed operating point,
  hence the pinned gain ratio (>= 25% in both modes);
* both schemes deliver every round.

The summary is written to ``network_coding_summary.json`` at the
repository root for the CI artifact.  The pytest-benchmark fixture wraps
the full exchange sweep, so the harness doubles as a performance
regression test for the netcode layer.
"""

from __future__ import annotations

import json
import pathlib

from _bench_utils import bench_smoke
from repro.netcode import TwoWayConfig, run_two_way_exchange

SEED = 20111114
_SUMMARY_PATH = (
    pathlib.Path(__file__).resolve().parent.parent / "network_coding_summary.json"
)

# (snr_db, rounds, smoke codes) and the pinned {family: (xor, baseline)}
# medium-use totals at that operating point.
_SMOKE_POINT = (33.0, 4, True, {"spinal": (30, 40), "lt": (864, 1152)})
_FULL_POINT = (30.0, 4, False, {"spinal": (38, 52), "lt": (1008, 1344)})


def _operating_point():
    return _SMOKE_POINT if bench_smoke() else _FULL_POINT


def _run_families(snr_db: float, rounds: int, smoke: bool) -> dict:
    results = {}
    for family in ("spinal", "lt"):
        config = TwoWayConfig(
            family=family,
            snr_a_db=snr_db,
            snr_b_db=snr_db,
            rounds=rounds,
            seed=SEED,
            smoke=smoke,
        )
        results[family] = run_two_way_exchange(config)
    return results


def test_two_way_xor_gain(benchmark, reporter):
    snr_db, rounds, smoke, pins = _operating_point()
    results = benchmark(_run_families, snr_db, rounds, smoke)

    summary = {"snr_db": snr_db, "rounds": rounds, "smoke_codes": smoke}
    for family, result in results.items():
        assert result.xor_delivery_rate == 1.0, family
        assert result.baseline_delivery_rate == 1.0, family
        # The headline claim: strictly cheaper than two one-way exchanges.
        assert result.xor_total_uses < result.baseline_total_uses, family
        xor_pin, baseline_pin = pins[family]
        assert result.xor_total_uses == xor_pin, (family, result.xor_total_uses)
        assert result.baseline_total_uses == baseline_pin, (
            family,
            result.baseline_total_uses,
        )
        assert result.medium_use_saving >= 0.25, (family, result.medium_use_saving)
        summary[family] = {
            "xor_uses": result.xor_total_uses,
            "baseline_uses": result.baseline_total_uses,
            "saving": round(result.medium_use_saving, 4),
            "downlink_saving": round(result.downlink_saving, 4),
        }
    _SUMMARY_PATH.write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n")

    rows = "\n".join(
        f"{family:>8}: xor={summary[family]['xor_uses']:>5}  "
        f"baseline={summary[family]['baseline_uses']:>5}  "
        f"saving={summary[family]['saving']:.4f}  "
        f"downlink_saving={summary[family]['downlink_saving']:.4f}"
        for family in ("spinal", "lt")
    )
    reporter.add(
        "Network-coding gain (E20) — XOR two-way relaying vs two one-way exchanges",
        f"operating point: snr={snr_db} dB, rounds={rounds}, "
        f"smoke_codes={smoke}\n{rows}\n"
        "(three equal-cost phases instead of four: ideal saving 0.25; the\n"
        "broadcast downlink replaces two unicasts: ideal downlink saving 0.5)",
    )
