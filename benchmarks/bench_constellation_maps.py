"""E11: constellation mapping ablation (linear vs offset-linear vs Gaussian).

Section 6 conjectures that a Gaussian-shaped mapping would improve on the
linear map of Eq. (3) (part of the Theorem-1 gap is shaping loss).  This
bench measures all three implemented maps across SNR.
"""

from __future__ import annotations

from _bench_utils import bench_trials

from repro.experiments.constellation_maps import constellation_experiment, constellation_table
from repro.experiments.runner import SpinalRunConfig


def _run():
    base = SpinalRunConfig(n_trials=bench_trials(25))
    return constellation_experiment(
        constellation_kinds=("linear", "offset-linear", "truncated-gaussian"),
        snr_values_db=(0.0, 10.0, 20.0),
        base_config=base,
    )


def test_constellation_maps(benchmark, reporter):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    reporter.add("Constellation mapping ablation (E11)", constellation_table(rows))
