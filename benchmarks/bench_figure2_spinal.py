"""E1/E2 (Figure 2, spinal curve): rate vs SNR for the paper's configuration.

Regenerates the headline curve of Figure 2 — the practical spinal decoder
with message length m = 24, k = 8, c = 10, beam width B = 16 and a 14-bit
receiver ADC — over the paper's −10…40 dB SNR range, and reports:

* the mean achieved rate per SNR (the plotted quantity);
* the fraction of Shannon capacity achieved;
* the E2 headline: the SNR up to which the rateless spinal code outperforms
  the best possible *fixed-rate* code of block length 24 (the paper reports
  "all SNR <= 25 dB").
"""

from __future__ import annotations

from _bench_utils import bench_trials

from repro.experiments.figure2 import figure2_table
from repro.experiments.runner import SpinalRunConfig
from repro.utils.results import render_table

#: A coarser grid than the paper's 1-dB steps keeps the benchmark tractable
#: while preserving the curve's shape (26 points over the same range).
SNR_GRID_DB = [float(s) for s in range(-10, 42, 2)]


def _spinal_figure2():
    config = SpinalRunConfig(n_trials=bench_trials())
    return figure2_table(
        snr_values_db=SNR_GRID_DB, spinal_config=config, include_ldpc=False
    )


def test_figure2_spinal_curve(benchmark, reporter):
    data = benchmark.pedantic(_spinal_figure2, rounds=1, iterations=1)
    rows = []
    for i, snr_db in enumerate(data.snr_values_db):
        rows.append(
            (
                snr_db,
                data.shannon.points[i].mean_rate,
                data.fixed_block_bound.points[i].mean_rate,
                data.spinal.points[i].mean_rate,
                data.spinal_fraction_of_capacity()[i],
            )
        )
    table = render_table(
        ["SNR(dB)", "Shannon", "fixed-block bound", "Spinal m=24 B=16", "frac of capacity"],
        rows,
    )
    crossover = data.spinal_beats_fixed_block_until_db()
    summary = (
        "spinal beats the n=24 fixed-block bound up to "
        f"{crossover:.1f} dB (paper: ~25 dB)"
        if crossover is not None
        else "spinal beats the n=24 fixed-block bound over the whole grid"
    )
    reporter.add("Figure 2 — spinal curve (E1) and E2 crossover", table + "\n" + summary)
