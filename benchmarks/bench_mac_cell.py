"""E16/E17: multi-user cell sweeps — scale, scheduling gain, rateless win.

Three pins on the new MAC layer:

* a 16-user round-robin cell sweep (the cell-scaling experiment at its
  largest user count) completes within the smoke budget — the cell
  simulator's cost grows with traffic, not with users², and CI notices if
  that regresses;
* on *static* spread SNRs every work-conserving scheduler drains the same
  backlog in the same airtime, so max-SNR aggregate goodput is >= (in fact
  ==) round-robin — the null result that validates the shared-medium
  accounting;
* on *wall-clock-varying* channels (anti-phase sinusoidal traces pinned to
  the cell clock) opportunism is strictly profitable: max-SNR full-buffer
  throughput beats round-robin.
"""

from __future__ import annotations

import numpy as np
from _bench_utils import bench_smoke, bench_workers

from repro.channels.awgn import TimeVaryingAWGNChannel
from repro.channels.traces import sinusoidal_trace
from repro.core.params import SpinalParams
from repro.experiments import registry
from repro.experiments.registry import render_run, run_experiment
from repro.experiments.runner import SpinalRunConfig
from repro.mac.cell import CellUser, MacCell, RatelessLink
from repro.utils.bitops import random_message_bits
from repro.utils.rng import spawn_rng

#: Wall-clock ceiling for the 16-user smoke sweep (seconds); generous —
#: the measured time is ~1 s — but tight enough to catch superlinear
#: regressions in the grant loop.
_SMOKE_BUDGET_SECONDS = 120.0


def _scaling_overrides() -> dict:
    overrides = {
        "n_users": (16,),
        "scheduler": ("round-robin", "max-snr"),
        "snr_spread_db": 12.0,
    }
    if bench_smoke():
        overrides.update(
            {
                "packets_per_user": 2,
                "max_symbols": 512,
                "payload_bits": 16,
                "k": 4,
                "c": 6,
                "beam_width": 8,
            }
        )
    return overrides


def test_cell_16_users_round_robin_within_budget(benchmark, reporter):
    experiment = registry.get("cell-scaling")

    def _run():
        return run_experiment(
            experiment, overrides=_scaling_overrides(), n_workers=bench_workers()
        )

    outcome = benchmark.pedantic(_run, rounds=1, iterations=1)
    cells = {params["scheduler"]: cell["aggregate"] for _k, params, cell in outcome.successful_cells()}
    for aggregate in cells.values():
        assert aggregate["delivered"] == aggregate["n_packets"], aggregate
    # Static spread SNRs: opportunism can't lose airtime, only reorder it.
    assert cells["max-snr"]["goodput"] >= cells["round-robin"]["goodput"]
    if bench_smoke():
        assert benchmark.stats["mean"] < _SMOKE_BUDGET_SECONDS
    reporter.add(
        "Multi-user cell (E16) — 16-user sweep, round-robin vs max-SNR",
        render_run(experiment, outcome.record)
        + f"\n(workers={bench_workers()}; 16 users, SNR spread 12 dB; static "
        "channels make aggregate goodput scheduler-invariant by design)",
    )


def _time_varying_users(n_packets: int):
    config = SpinalRunConfig(
        payload_bits=16,
        params=SpinalParams(k=4, c=6, seed=31),
        beam_width=8,
        search="sequential",
        max_symbols=512,
    )
    users = []
    for u in range(4):
        trace = sinusoidal_trace(10.0, 9.0, 64, 64, phase=2 * np.pi * u / 4)
        channel = TimeVaryingAWGNChannel(trace, adc_bits=14)
        session = config.build_session(channel, 512, search="sequential")
        payloads = [
            random_message_bits(16, spawn_rng(9, "bench-tv", u, i))
            for i in range(n_packets)
        ]
        users.append(CellUser(RatelessLink(session), payloads))
    return users


def test_opportunistic_gain_on_time_varying_channels(benchmark, reporter):
    horizon = 400 if bench_smoke() else 1600
    n_packets = 60 if bench_smoke() else 240

    def _run():
        throughput = {}
        for name in ("round-robin", "max-snr", "proportional-fair"):
            cell = MacCell(_time_varying_users(n_packets), name, seed=11)
            result = cell.run_until(horizon)
            assert any(not p.finished for p in cell.packets)  # full buffer held
            throughput[name] = result.delivered_bits / horizon
        return throughput

    throughput = benchmark.pedantic(_run, rounds=1, iterations=1)
    assert throughput["max-snr"] > throughput["round-robin"]
    assert throughput["proportional-fair"] > throughput["round-robin"]
    reporter.add(
        "Multi-user cell — opportunistic gain on wall-clock-varying channels",
        "\n".join(
            f"{name:<20} {value:.3f} b/symbol-time"
            for name, value in throughput.items()
        )
        + f"\n(4 users, anti-phase sinusoidal SNR traces, horizon {horizon})",
    )
