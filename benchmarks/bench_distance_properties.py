"""E8: nonlinearity and codeword-distance properties of the hashed code.

Section 4: flipping a single message bit should make the coded sequence
diverge as if it were a fresh random codeword.  This bench samples the
distance distributions (1-bit flips vs random pairs) and the hash avalanche
score with the Figure 2 code parameters.
"""

from __future__ import annotations

from repro.experiments.distance import distance_experiment, distance_table


def _run():
    return distance_experiment(
        n_message_bits=32, k=8, c=10, n_passes=2, n_samples=400
    )


def test_distance_properties(benchmark, reporter):
    profile = benchmark.pedantic(_run, rounds=1, iterations=1)
    reporter.add("Nonlinearity / distance profile (E8)", distance_table(profile))
