"""Codec-session benchmarks: shim overhead and cross-family session cost.

Two properties of the ``repro.phy`` redesign are worth guarding:

* the legacy ``RatelessSession.run`` entry point is a *thin* shim over the
  code-agnostic :class:`~repro.phy.session.CodecSession` — same decode
  work, same noise draws, plus only a constant-time adapter construction —
  so the compatibility layer must cost **< 5%** of wall-clock on top of the
  direct codec path;
* the generic session loop itself stays cheap across families: its
  per-block bookkeeping (gating, status recording) is amortised by the
  whole-block batching the encoders provide.

The shim pin is measured as a ratio of medians over interleaved samples, so
a machine-load drift hits both paths alike.
"""

from __future__ import annotations

import time
import warnings

import numpy as np

from _bench_utils import bench_smoke, bench_trials

from repro.channels.awgn import AWGNChannel
from repro.core.decoder_incremental import IncrementalBubbleDecoder
from repro.core.encoder import SpinalEncoder
from repro.core.framing import Framer
from repro.core.params import SpinalParams
from repro.core.rateless import RatelessSession
from repro.phy.families import CODE_FAMILY_NAMES, make_codec_session
from repro.utils.bitops import random_message_bits
from repro.utils.rng import spawn_rng

_SEED = 20111114
#: Accepted shim overhead: the redesign's acceptance threshold.
_MAX_SHIM_OVERHEAD = 0.05


def _spinal_session(max_symbols: int = 2048) -> RatelessSession:
    params = SpinalParams(k=4, c=6)
    return RatelessSession(
        SpinalEncoder(params),
        decoder_factory=lambda enc: IncrementalBubbleDecoder(enc, beam_width=8),
        channel=AWGNChannel(snr_db=8.0, adc_bits=14),
        framer=Framer(payload_bits=16, k=4),
        max_symbols=max_symbols,
    )


def _time_trials(run_trial, n_trials: int) -> float:
    start = time.perf_counter()
    for trial in range(n_trials):
        run_trial(trial)
    return (time.perf_counter() - start) / n_trials


def test_shim_overhead_under_5_percent(benchmark, reporter):
    """``RatelessSession.run`` vs the direct ``CodecSession.run`` it wraps."""
    legacy = _spinal_session()
    direct = legacy.codec_session()
    n_trials = bench_trials(20)
    repeats = 3 if bench_smoke() else 7

    def legacy_trial(trial: int) -> None:
        rng = spawn_rng(_SEED, "bench-shim", trial)
        legacy.run(random_message_bits(16, rng), rng)

    def direct_trial(trial: int) -> None:
        rng = spawn_rng(_SEED, "bench-shim", trial)
        direct.run(random_message_bits(16, rng), rng)

    # Warm both paths (hash tables, caches) before timing; the shim's single
    # once-per-process DeprecationWarning fires here, so the timed region
    # only pays its set-membership check.
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        legacy_trial(0), direct_trial(0)

    def measure():
        # Alternate the two paths per repeat so load drift hits both alike.
        legacy_samples, direct_samples = [], []
        for _ in range(repeats):
            legacy_samples.append(_time_trials(legacy_trial, n_trials))
            direct_samples.append(_time_trials(direct_trial, n_trials))
        return float(np.median(legacy_samples)), float(np.median(direct_samples))

    legacy_s, direct_s = benchmark.pedantic(measure, rounds=1, iterations=1)
    overhead = legacy_s / direct_s - 1.0
    assert overhead < _MAX_SHIM_OVERHEAD, (
        f"RatelessSession.run shim costs {overhead:+.1%} over CodecSession.run "
        f"(limit {_MAX_SHIM_OVERHEAD:.0%}): {legacy_s * 1e6:.1f}µs vs "
        f"{direct_s * 1e6:.1f}µs per trial"
    )
    reporter.add(
        "Codec shim overhead — RatelessSession.run vs CodecSession.run",
        f"legacy {legacy_s * 1e6:9.1f} µs/trial\n"
        f"direct {direct_s * 1e6:9.1f} µs/trial\n"
        f"overhead {overhead:+.2%} (limit {_MAX_SHIM_OVERHEAD:.0%})",
    )


def test_all_families_session_cost(benchmark, reporter):
    """One successful session per family: the cross-family cost landscape."""
    n_trials = 2 if bench_smoke() else 10
    rows = []

    def measure():
        rows.clear()
        for family in CODE_FAMILY_NAMES:
            session = make_codec_session(
                family, snr_db=10.0, seed=_SEED, smoke=True, max_symbols=4096
            )
            start = time.perf_counter()
            delivered = 0
            for trial in range(n_trials):
                rng = spawn_rng(_SEED, "bench-family", family, trial)
                payload = random_message_bits(session.payload_bits, rng)
                result = session.run(payload, rng)
                delivered += int(result.payload_correct)
            elapsed = (time.perf_counter() - start) / n_trials
            rows.append((family, elapsed, delivered, n_trials))
        return rows

    benchmark.pedantic(measure, rounds=1, iterations=1)
    for family, elapsed, delivered, total in rows:
        assert delivered == total, f"{family} failed at 10 dB in the benchmark"
    table = "\n".join(
        f"{family:13s} {elapsed * 1e3:8.2f} ms/trial ({delivered}/{total} correct)"
        for family, elapsed, delivered, total in rows
    )
    reporter.add("Codec session cost per family (smoke configs, 10 dB)", table)
