"""E15: the value of ratelessness itself (rateless vs fixed-rate spinal).

Section 3 notes the code can also run at fixed rates; this bench compares
the rateless session against the *hindsight-best* fixed-rate spinal
configuration at each SNR, isolating the gain that comes purely from
rateless operation (no configuration selection, symbol-granular stopping).
"""

from __future__ import annotations

from _bench_utils import bench_trials

from repro.experiments.fixed_vs_rateless import (
    fixed_vs_rateless_experiment,
    fixed_vs_rateless_table,
)
from repro.experiments.runner import SpinalRunConfig


def _run():
    config = SpinalRunConfig(n_trials=bench_trials(25))
    return fixed_vs_rateless_experiment(
        snr_values_db=(0.0, 5.0, 10.0, 15.0, 20.0),
        config=config,
        n_fixed_frames=max(25, bench_trials(25)),
    )


def test_fixed_vs_rateless(benchmark, reporter):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    reporter.add("Rateless vs hindsight-best fixed-rate spinal (E15)", fixed_vs_rateless_table(rows))
