"""E1 (Figure 2, analytic curves): Shannon bound and the PPV fixed-block bound.

Regenerates the two non-simulated curves of Figure 2 on the paper's SNR grid
and benchmarks their evaluation cost (trivial, but it keeps the bound code
under performance regression watch together with the rest of the harness).
"""

from __future__ import annotations

from repro.experiments.figure2 import (
    DEFAULT_SNR_GRID_DB,
    fixed_block_bound_curve,
    shannon_curve,
)
from repro.utils.results import render_table


def _bounds_table() -> str:
    shannon = shannon_curve(DEFAULT_SNR_GRID_DB)
    ppv = fixed_block_bound_curve(DEFAULT_SNR_GRID_DB)
    rows = [
        (snr, c, b)
        for snr, c, b in zip(DEFAULT_SNR_GRID_DB, shannon.mean_rates(), ppv.mean_rates())
    ]
    return render_table(["SNR(dB)", "Shannon bound", "fixed-block bound (n=24, 1e-4)"], rows)


def test_figure2_bound_curves(benchmark, reporter):
    table = benchmark(_bounds_table)
    reporter.add("Figure 2 — analytic bound curves", table)
