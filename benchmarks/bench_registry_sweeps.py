"""Registry engine benchmarks: sweep throughput and cache-resume latency.

Two performance properties of the unified experiment engine are worth
guarding:

* a registry-driven sweep costs essentially what its kernels cost — the
  declarative layer (grid expansion, seeding, aggregation, persistence)
  adds only noise on top of the Monte-Carlo work;
* resuming a persisted spec is *fast*: a cache-hit re-run performs zero
  kernel work, so it must complete orders of magnitude faster than the
  compute pass and return an identical record.
"""

from __future__ import annotations

from _bench_utils import bench_trials, bench_workers

from repro.experiments import registry
from repro.experiments.registry import run_experiment
from repro.utils.store import RunStore

#: The compute-pass configuration: a real (non-smoke) puncturing sweep,
#: scaled by the usual fidelity knobs.
_OVERRIDES = {
    "schedule": ("none", "tail-first"),
    "snr_db": (20.0, 30.0),
    "payload_bits": 16,
    "k": 4,
    "c": 6,
    "beam_width": 8,
}


def test_registry_sweep_compute(benchmark, reporter, tmp_path):
    """Cold sweep through the engine: expand, fan out, aggregate, persist."""
    experiment = registry.get("puncturing")
    n_trials = bench_trials(10)

    def _run():
        return run_experiment(
            experiment,
            overrides=_OVERRIDES,
            n_trials=n_trials,
            n_workers=bench_workers(),
            store=RunStore(tmp_path / "cold"),
        )

    outcome = benchmark.pedantic(_run, rounds=1, iterations=1)
    assert outcome.n_cells_computed == 4
    reporter.add(
        "Registry engine — cold puncturing sweep (4 cells, persisted)",
        outcome.table(),
    )


def test_registry_cache_resume(benchmark, reporter, tmp_path):
    """Warm re-run of a persisted spec: all cells from cache, no kernels."""
    experiment = registry.get("puncturing")
    n_trials = bench_trials(10)
    store = RunStore(tmp_path / "warm")

    def _setup():
        run_experiment(
            experiment, overrides=_OVERRIDES, n_trials=n_trials, store=store
        )
        return (), {}

    def _resume():
        return run_experiment(
            experiment, overrides=_OVERRIDES, n_trials=n_trials, store=store
        )

    outcome = benchmark.pedantic(_resume, setup=_setup, rounds=3, iterations=1)
    assert outcome.n_cells_computed == 0
    assert outcome.n_cells_cached == 4
    reporter.add(
        "Registry engine — warm resume of the same spec (0 cells recomputed)",
        f"cache-resume wall time: {benchmark.stats['mean'] * 1e3:.2f} ms (mean of 3)",
    )
