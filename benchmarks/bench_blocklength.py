"""E9: behaviour across message lengths ("similar results for other block lengths").

Measures the spinal rate for several message lengths at three SNRs and
reports each length's finite-blocklength fixed-rate bound alongside, showing
how the SNR threshold at which the bound overtakes the rateless code shifts
with length (Section 5's closing remark).
"""

from __future__ import annotations

from _bench_utils import bench_trials

from repro.experiments.blocklength import blocklength_experiment, blocklength_table
from repro.experiments.runner import SpinalRunConfig


def _run():
    base = SpinalRunConfig(n_trials=bench_trials(25))
    return blocklength_experiment(
        payload_lengths=(16, 24, 48, 96),
        snr_values_db=(0.0, 10.0, 20.0),
        base_config=base,
    )


def test_blocklength_sweep(benchmark, reporter):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    reporter.add("Message length sweep (E9)", blocklength_table(rows))
