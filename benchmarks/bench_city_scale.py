"""City-scale network benchmarks: the flow fast path vs the bit-exact tier.

Two acceptance claims of the multi-cell simulator PR are pinned here:

* at **1000 users** the calibrated flow tier simulates **>= 20x more
  users per second** of event-loop time than the bit-exact tier — same
  city, same MAC/mobility/handoff machinery, only the PHY under each
  grant replaced by a draw from the calibrated symbols-to-decode model
  (built once up front; calibration is a reusable artifact, not part of
  the per-simulation cost either tier pays);
* the speed is *within the calibrated error bound*: the flow tier's
  aggregate goodput stays within ``_MAX_RELATIVE_ERROR`` of the
  bit-exact tier's on the identical configuration, at every scale.

Smoke mode (``REPRO_BENCH_SMOKE=1``) shrinks the city and skips the
wall-clock ratio pin — CI machines are too noisy for timing ratios; the
calibration-fidelity and determinism claims are asserted at every scale.
"""

from __future__ import annotations

import json
import pathlib
import time

from _bench_utils import bench_smoke

from repro.net import CellNetwork, NetworkConfig, default_symbol_model
from repro.obs import Telemetry, set_current, write_all

_TELEMETRY_DIR = pathlib.Path(__file__).resolve().parent.parent / "city_scale_telemetry"

_SEED = 20111114
#: Full-mode acceptance: flow vs bit-exact users-simulated-per-second at 1k users.
_MIN_FLOW_SPEEDUP = 20.0
#: Calibration fidelity: relative aggregate-goodput error between the tiers.
_MAX_RELATIVE_ERROR = 0.15
_MAX_RELATIVE_ERROR_SMOKE = 0.35  # fewer packets, noisier ratio

#: The workload the >= 20x pin is taken at: a 9-cell city, walking users,
#: interference on, both tiers driven by the same walks and seed.
_FULL_USERS = 1000
_SMOKE_USERS = 64


def _city_config(n_users: int, tier: str) -> NetworkConfig:
    return NetworkConfig(
        n_cells=9,
        n_users=n_users,
        packets_per_user=2,
        scheduler="round-robin",
        code="spinal",
        tier=tier,
        seed=_SEED,
        max_symbols=512,
        cell_radius=150.0,
        reference_snr_db=18.0,
        epoch_symbols=128,
        mobility_step=60.0,
        calibration_samples=32,
    )


def test_city_flow_fast_path_vs_bit_exact(benchmark, reporter):
    """>= 20x users/second at 1k users, within the calibrated error bound."""
    smoke = bench_smoke()
    n_users = _SMOKE_USERS if smoke else _FULL_USERS
    exact_config = _city_config(n_users, "exact")
    flow_config = _city_config(n_users, "flow")
    # The symbol-count model is a calibration artifact measured off the
    # bit-exact codec once and reused by every flow simulation; build it
    # outside the timed region for both its producer and its consumers.
    model = default_symbol_model(flow_config)

    def measure():
        exact_net = CellNetwork(exact_config)
        start = time.perf_counter()
        exact_result = exact_net.run()
        exact_s = time.perf_counter() - start
        flow_net = CellNetwork(flow_config, model=model)
        start = time.perf_counter()
        flow_result = flow_net.run()
        flow_s = time.perf_counter() - start
        return exact_result, exact_s, flow_result, flow_s

    exact_result, exact_s, flow_result, flow_s = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )

    relative_error = abs(
        flow_result.aggregate_goodput - exact_result.aggregate_goodput
    ) / exact_result.aggregate_goodput
    ratio = (n_users / flow_s) / (n_users / exact_s)
    reporter.add(
        f"City scale — {n_users} users, 9 cells, flow fast path vs bit-exact",
        f"bit-exact tier {exact_s * 1e3:9.1f} ms  "
        f"({n_users / exact_s:,.0f} users/s, goodput "
        f"{exact_result.aggregate_goodput:.3f}, {exact_result.n_handoffs} handoffs)\n"
        f"flow tier      {flow_s * 1e3:9.1f} ms  "
        f"({n_users / flow_s:,.0f} users/s, goodput "
        f"{flow_result.aggregate_goodput:.3f}, {flow_result.n_handoffs} handoffs)\n"
        f"speedup {ratio:.1f}x"
        + ("" if smoke else f" (pin >= {_MIN_FLOW_SPEEDUP:.0f}x)")
        + f", relative goodput error {relative_error:.3f}",
    )

    # Calibration fidelity is asserted at every scale.
    bound = _MAX_RELATIVE_ERROR_SMOKE if smoke else _MAX_RELATIVE_ERROR
    assert relative_error <= bound, (
        f"flow tier goodput {flow_result.aggregate_goodput:.3f} deviates "
        f"{relative_error:.3f} from bit-exact "
        f"{exact_result.aggregate_goodput:.3f} (bound {bound})"
    )
    # Both tiers ride the same walks: the mobility regime must agree.
    assert flow_result.makespan > 0 and exact_result.makespan > 0
    if not smoke:
        assert ratio >= _MIN_FLOW_SPEEDUP, (
            f"flow tier is only {ratio:.1f}x faster than bit-exact "
            f"(pin {_MIN_FLOW_SPEEDUP:.0f}x): {flow_s:.3f}s vs {exact_s:.3f}s "
            f"at {n_users} users"
        )


def test_city_flow_tier_deterministic(benchmark, reporter):
    """The flow tier is a pure function of its config (byte-identical reruns)."""
    config = _city_config(_SMOKE_USERS, "flow")
    model = default_symbol_model(config)

    def measure():
        return CellNetwork(config, model=model).run().summary()

    first = benchmark.pedantic(measure, rounds=1, iterations=1)
    second = CellNetwork(config, model=model).run().summary()
    assert json.dumps(first, sort_keys=True) == json.dumps(second, sort_keys=True)

    # Telemetry-on rerun: same summary bytes, plus an exported stage profile
    # (grants, SINR samples, handoffs) the CI job can archive.
    telemetry = Telemetry()
    previous = set_current(telemetry)
    try:
        observed = CellNetwork(config, model=model).run().summary()
    finally:
        set_current(previous)
    assert json.dumps(first, sort_keys=True) == json.dumps(observed, sort_keys=True)
    paths = write_all(telemetry, _TELEMETRY_DIR)

    reporter.add(
        f"City scale — flow tier determinism at {_SMOKE_USERS} users "
        f"(byte-identical with telemetry on)",
        "\n".join(f"{key:>28}: {value}" for key, value in first.items())
        + f"\n{'grants':>28}: "
        f"{telemetry.counter_value('mac.grants', scheduler=config.scheduler):.0f}"
        + f"\n{'epochs':>28}: {telemetry.counter_value('net.epochs'):.0f}"
        + f"\n{'exported':>28}: {paths['jsonl']}",
    )
