"""E7: puncturing schedules and rates above k bits/symbol.

Section 3.1/5: with puncturing the achieved rate can exceed the un-punctured
ceiling of k bits/symbol (the paper's Figure 2 tops out around 9 bits/symbol
with k = 8).  This bench compares the implemented schedules at high SNR and
reports how often each beats k.
"""

from __future__ import annotations

from _bench_utils import bench_trials

from repro.experiments.puncturing import puncturing_experiment, puncturing_table
from repro.experiments.runner import SpinalRunConfig


def _run():
    base = SpinalRunConfig(n_trials=bench_trials(25))
    return puncturing_experiment(
        snr_values_db=(20.0, 30.0, 40.0),
        schedules=("none", "symbol", "strided", "tail-first"),
        base_config=base,
    )


def test_puncturing_schedules(benchmark, reporter):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    reporter.add("Puncturing — rates above k bits/symbol (E7)", puncturing_table(rows))
