"""E1 (Figure 2, LDPC baselines): achieved rate of the eight fixed-rate configs.

Regenerates the eight LDPC curves of Figure 2: 648-bit wifi-like codes at
rates 1/2, 2/3, 3/4 and 5/6 over BPSK / QAM-4 / QAM-16 / QAM-64, decoded with
40-iteration belief propagation on soft demapper output.  Each curve is the
nominal spectral efficiency multiplied by the measured frame success rate.
"""

from __future__ import annotations

from _bench_utils import bench_ldpc_frames

from repro.experiments.figure2 import ldpc_figure2_curves
from repro.utils.results import render_table

#: The LDPC Monte-Carlo is the slowest part of Figure 2; a 4-dB grid over the
#: range where the waterfalls live is enough to place every curve.
SNR_GRID_DB = [float(s) for s in range(-10, 42, 4)]


def _ldpc_curves():
    return ldpc_figure2_curves(
        snr_values_db=SNR_GRID_DB,
        n_frames=bench_ldpc_frames(),
        max_iterations=40,
        algorithm="sum-product",
    )


def test_figure2_ldpc_baselines(benchmark, reporter):
    curves = benchmark.pedantic(_ldpc_curves, rounds=1, iterations=1)
    names = list(curves)
    rows = []
    for i, snr_db in enumerate(SNR_GRID_DB):
        rows.append([snr_db] + [curves[name].points[i].mean_rate for name in names])
    table = render_table(["SNR(dB)"] + names, rows, float_format="{:.2f}")
    reporter.add("Figure 2 — LDPC baseline curves (E1)", table)
