"""E10: receiver ADC resolution ablation (the paper quantises to 14 bits).

Sweeps the ADC depth from 4 bits to none and reports the achieved rate,
confirming the paper's 14-bit choice is transparent and locating the depth
at which quantisation starts to bite.
"""

from __future__ import annotations

from _bench_utils import bench_trials

from repro.experiments.quantization import quantization_experiment, quantization_table
from repro.experiments.runner import SpinalRunConfig


def _run():
    base = SpinalRunConfig(n_trials=bench_trials(25))
    return quantization_experiment(
        adc_bit_depths=(4, 6, 8, 10, 14, None),
        snr_values_db=(10.0, 25.0),
        base_config=base,
    )


def test_adc_quantization(benchmark, reporter):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    reporter.add("ADC quantisation ablation (E10)", quantization_table(rows))
