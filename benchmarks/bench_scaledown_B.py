"""E5: graceful scale-down — rate as a function of the decoder beam width B.

Section 3.2/5 of the paper claims that even small B achieves rates close to
capacity and that performance improves gracefully as B grows.  This bench
sweeps B from 1 to 256 at three SNRs with the Figure 2 message size.
"""

from __future__ import annotations

from _bench_utils import bench_trials

from repro.experiments.runner import SpinalRunConfig
from repro.experiments.scale_down import scale_down_experiment, scale_down_table


def _run():
    base = SpinalRunConfig(n_trials=bench_trials(25))
    return scale_down_experiment(
        snr_values_db=(5.0, 10.0, 20.0),
        beam_widths=(1, 2, 4, 8, 16, 64, 256),
        base_config=base,
    )


def test_scale_down_beam_width(benchmark, reporter):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    reporter.add("Graceful scale-down — rate vs beam width B (E5)", scale_down_table(rows))
