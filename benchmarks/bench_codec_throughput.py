"""E14: raw encoder/decoder throughput and its scaling.

Section 3 claims encoding is linear in the message size and the practical
decoder is linear in the message length and exponential only in k.  These
micro-benchmarks measure the hot kernels directly (and are the benchmarks
most useful for performance-regression tracking):

* spine generation + one pass of symbol generation for a 1024-bit message;
* one bubble-decoder invocation (B = 16, k = 8) on a 3-pass observation set;
* one LDPC belief-propagation decode (rate 1/2, 40 iterations).
"""

from __future__ import annotations

import numpy as np

from repro.channels.awgn import AWGNChannel
from repro.core.decoder_bubble import BubbleDecoder
from repro.core.encoder import ReceivedObservations, SpinalEncoder
from repro.core.params import SpinalParams
from repro.ldpc import BeliefPropagationDecoder, make_wifi_like_code
from repro.modulation import BPSK
from repro.utils.bitops import random_message_bits
from repro.utils.rng import spawn_rng


def test_encoder_throughput_1024_bit_message(benchmark, reporter):
    params = SpinalParams(k=8, c=10)
    encoder = SpinalEncoder(params)
    rng = spawn_rng(1, "bench-encode")
    message = random_message_bits(1024, rng)

    def encode_one_pass():
        return encoder.encode_passes(message, n_passes=1)

    result = benchmark(encode_one_pass)
    assert result.shape == (1, 128)
    reporter.add(
        "Codec throughput (E14) — encoder",
        "encoded 1024-bit message, one pass of 128 symbols per call "
        "(see pytest-benchmark table for timing)",
    )


def test_bubble_decoder_throughput(benchmark, reporter):
    params = SpinalParams(k=8, c=10)
    encoder = SpinalEncoder(params)
    rng = spawn_rng(2, "bench-decode")
    message = random_message_bits(96, rng)
    channel = AWGNChannel(snr_db=10.0, adc_bits=14)
    passes = encoder.encode_passes(message, 3)
    observations = ReceivedObservations(passes.shape[1])
    for pass_index in range(3):
        received = channel.transmit(passes[pass_index], rng)
        for position in range(passes.shape[1]):
            observations.add(position, pass_index, received[position])
    decoder = BubbleDecoder(encoder, beam_width=16)

    def decode():
        return decoder.decode(96, observations)

    result = benchmark(decode)
    assert result.n_bits == 96
    reporter.add(
        "Codec throughput (E14) — bubble decoder",
        "decoded a 96-bit message (12 tree levels, B=16, k=8, 3 passes) per call",
    )


def test_ldpc_bp_decoder_throughput(benchmark, reporter):
    code = make_wifi_like_code(0.5)
    decoder = BeliefPropagationDecoder(code, max_iterations=40)
    modulation = BPSK()
    rng = spawn_rng(3, "bench-ldpc")
    message = rng.integers(0, 2, size=code.k, dtype=np.uint8)
    codeword = code.encode(message)
    symbols = modulation.modulate(codeword)
    noise_energy = 10 ** (-2.0 / 10)
    noise = np.sqrt(noise_energy / 2) * (
        rng.standard_normal(symbols.size) + 1j * rng.standard_normal(symbols.size)
    )
    llrs = modulation.demodulate_llr(symbols + noise, noise_energy)

    def decode():
        return decoder.decode(llrs)

    decoded, _ = benchmark(decode)
    assert decoded.shape == (code.n,)
    reporter.add(
        "Codec throughput (E14) — LDPC BP decoder",
        "decoded one 648-bit rate-1/2 frame (sum-product, up to 40 iterations) per call",
    )
