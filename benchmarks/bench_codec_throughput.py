"""E14: raw encoder/decoder throughput and its scaling.

Section 3 claims encoding is linear in the message size and the practical
decoder is linear in the message length and exponential only in k.  These
micro-benchmarks measure the hot kernels directly (and are the benchmarks
most useful for performance-regression tracking):

* spine generation + one pass of symbol generation for a 1024-bit message;
* one bubble-decoder invocation (B = 16, k = 8) on a 3-pass observation set;
* a full rateless trial with the from-scratch versus the incremental
  decoding engine (the engine must show a >= 3x reduction in tree-node
  evaluations at the Figure-2 low-SNR operating point);
* the process-parallel Monte-Carlo runner (``n_workers`` fan-out);
* one LDPC belief-propagation decode (rate 1/2, 40 iterations).
"""

from __future__ import annotations

import numpy as np

from _bench_utils import bench_trials, bench_workers
from repro.channels.awgn import AWGNChannel
from repro.core.decoder_bubble import BubbleDecoder
from repro.core.decoder_incremental import IncrementalBubbleDecoder
from repro.core.encoder import ReceivedObservations, SpinalEncoder
from repro.core.params import SpinalParams
from repro.core.rateless import RatelessSession
from repro.experiments.runner import SpinalRunConfig, run_spinal_point
from repro.ldpc import BeliefPropagationDecoder, make_wifi_like_code
from repro.modulation import BPSK
from repro.utils.bitops import random_message_bits
from repro.utils.rng import spawn_rng


def test_encoder_throughput_1024_bit_message(benchmark, reporter):
    params = SpinalParams(k=8, c=10)
    encoder = SpinalEncoder(params)
    rng = spawn_rng(1, "bench-encode")
    message = random_message_bits(1024, rng)

    def encode_one_pass():
        return encoder.encode_passes(message, n_passes=1)

    result = benchmark(encode_one_pass)
    assert result.shape == (1, 128)
    reporter.add(
        "Codec throughput (E14) — encoder",
        "encoded 1024-bit message, one pass of 128 symbols per call "
        "(see pytest-benchmark table for timing)",
    )


def test_bubble_decoder_throughput(benchmark, reporter):
    params = SpinalParams(k=8, c=10)
    encoder = SpinalEncoder(params)
    rng = spawn_rng(2, "bench-decode")
    message = random_message_bits(96, rng)
    channel = AWGNChannel(snr_db=10.0, adc_bits=14)
    passes = encoder.encode_passes(message, 3)
    observations = ReceivedObservations(passes.shape[1])
    for pass_index in range(3):
        received = channel.transmit(passes[pass_index], rng)
        for position in range(passes.shape[1]):
            observations.add(position, pass_index, received[position])
    decoder = BubbleDecoder(encoder, beam_width=16)

    def decode():
        return decoder.decode(96, observations)

    result = benchmark(decode)
    assert result.n_bits == 96
    reporter.add(
        "Codec throughput (E14) — bubble decoder",
        "decoded a 96-bit message (12 tree levels, B=16, k=8, 3 passes) per call",
    )


def _rateless_trial_work(decoder_cls) -> tuple[int, int]:
    """Total (candidates explored, attempts) of fixed Figure-2 trials at -5 dB."""
    from repro.theory.capacity import awgn_capacity_db

    config = SpinalRunConfig()
    snr_db = -5.0
    session = RatelessSession(
        config.build_encoder(),
        decoder_factory=lambda enc: decoder_cls(enc, beam_width=config.beam_width),
        channel=AWGNChannel(snr_db=snr_db, signal_power=1.0, adc_bits=config.adc_bits),
        framer=config.build_framer(),
        termination="genie",
        max_symbols=config.symbol_budget(awgn_capacity_db(snr_db)),
        search="sequential",
    )
    codec = session.codec_session()
    candidates = attempts = 0
    for trial in range(4):
        rng = spawn_rng(config.seed, "trial", snr_db, trial)
        payload = random_message_bits(config.payload_bits, rng)
        result = codec.run(payload, rng)
        candidates += result.work
        attempts += result.decode_attempts
    return candidates, attempts


def test_incremental_engine_rateless_trial(benchmark, reporter):
    """The tentpole claim: >= 3x fewer tree-node evaluations per trial."""
    fresh_candidates, attempts = _rateless_trial_work(BubbleDecoder)
    candidates, _ = benchmark(_rateless_trial_work, IncrementalBubbleDecoder)
    reduction = fresh_candidates / candidates
    assert reduction >= 3.0, (fresh_candidates, candidates)
    reporter.add(
        "Codec throughput (E14) — incremental decoding engine",
        f"Figure-2 config at -5 dB SNR, sequential receiver, {attempts} decode "
        f"attempts over 4 trials: {fresh_candidates} tree nodes from scratch vs "
        f"{candidates} incremental ({reduction:.1f}x reduction)",
    )


def test_parallel_trial_runner(benchmark, reporter):
    """Trial-level fan-out over worker processes (identical results)."""
    n_workers = bench_workers()
    config = SpinalRunConfig(
        n_trials=max(4, bench_trials(8)), search="sequential", n_workers=n_workers
    )
    serial = run_spinal_point(config.with_(n_workers=1), 5.0)
    parallel = benchmark(run_spinal_point, config, 5.0)
    assert parallel.rates == serial.rates
    assert parallel.symbols_sent == serial.symbols_sent
    reporter.add(
        "Codec throughput (E14) — parallel Monte-Carlo runner",
        f"{config.n_trials} rateless trials at 5 dB fanned over "
        f"{n_workers} worker processes; results identical to the serial run "
        "(see pytest-benchmark table for timing)",
    )


def test_ldpc_bp_decoder_throughput(benchmark, reporter):
    code = make_wifi_like_code(0.5)
    decoder = BeliefPropagationDecoder(code, max_iterations=40)
    modulation = BPSK()
    rng = spawn_rng(3, "bench-ldpc")
    message = rng.integers(0, 2, size=code.k, dtype=np.uint8)
    codeword = code.encode(message)
    symbols = modulation.modulate(codeword)
    noise_energy = 10 ** (-2.0 / 10)
    noise = np.sqrt(noise_energy / 2) * (
        rng.standard_normal(symbols.size) + 1j * rng.standard_normal(symbols.size)
    )
    llrs = modulation.demodulate_llr(symbols + noise, noise_energy)

    def decode():
        return decoder.decode(llrs)

    decoded, _ = benchmark(decode)
    assert decoded.shape == (code.n,)
    reporter.add(
        "Codec throughput (E14) — LDPC BP decoder",
        "decoded one 648-bit rate-1/2 frame (sum-product, up to 40 iterations) per call",
    )
