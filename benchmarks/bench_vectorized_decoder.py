"""Vectorized decoder benchmarks: wall-clock speedup and batched decoding.

Two acceptance claims of the vectorized-engine PR are pinned here:

* at the paper's Figure-2 operating configuration (24-bit messages, k=8,
  c=10, B=16, tail-first puncturing, 14-bit ADC) the whole-beam array
  engine spends **>= 10x less decode wall-clock** per rateless session than
  the from-scratch :class:`BubbleDecoder`, with bit-identical trial
  outcomes.  The margin grows with session length (the from-scratch
  decoder's total work is quadratic in the number of decode attempts), so
  the pin is taken at a low SNR where sessions are long.
* :class:`BatchDecoder` shows **superlinear per-session gains**: decoding
  8 concurrent sessions through the stacked kernels costs measurably less
  wall-clock than decoding the same 8 sessions one at a time, again with
  bit-identical results per session.

Smoke mode (``REPRO_BENCH_SMOKE=1``) shrinks both experiments and asserts
correctness only — CI machines are too noisy for wall-clock ratio pins.
"""

from __future__ import annotations

import time

import numpy as np

from _bench_utils import bench_smoke

from repro.channels.awgn import AWGNChannel
from repro.core.decoder_bubble import BubbleDecoder
from repro.core.decoder_vectorized import BatchDecoder, VectorizedBubbleDecoder
from repro.core.encoder import ReceivedObservations, SpinalEncoder
from repro.core.params import SpinalParams
from repro.core.rateless import RatelessSession
from repro.experiments.runner import SpinalRunConfig
from repro.theory.capacity import awgn_capacity_db
from repro.utils.bitops import random_message_bits
from repro.utils.rng import spawn_rng

_SEED = 20111114
#: Full-mode acceptance: vectorized decode wall-clock at the Figure-2 point.
_MIN_SESSION_SPEEDUP = 10.0
#: Full-mode acceptance: 8-session batch vs the same sessions one at a time.
_MAX_BATCH_FRACTION = 0.75


class _TimedDecoder:
    """Forwarding wrapper accumulating wall-clock spent inside ``decode``."""

    def __init__(self, inner) -> None:
        self.inner = inner
        self.seconds = 0.0

    def decode(self, n_message_bits, observations):
        start = time.perf_counter()
        result = self.inner.decode(n_message_bits, observations)
        self.seconds += time.perf_counter() - start
        return result

    def __getattr__(self, name):
        return getattr(self.inner, name)


def _run_session_trials(engine_cls, snr_db: float, n_trials: int):
    """Decode-time and outcomes of ``n_trials`` Figure-2 rateless sessions."""
    config = SpinalRunConfig()
    times, outcomes = [], []
    for trial in range(n_trials):
        timed: list[_TimedDecoder] = []

        def factory(encoder):
            timed.append(_TimedDecoder(engine_cls(encoder, beam_width=config.beam_width)))
            return timed[-1]

        session = RatelessSession(
            config.build_encoder(),
            decoder_factory=factory,
            channel=AWGNChannel(snr_db=snr_db, signal_power=1.0, adc_bits=config.adc_bits),
            framer=config.build_framer(),
            termination="genie",
            max_symbols=config.symbol_budget(awgn_capacity_db(snr_db)),
            search="sequential",
        )
        rng = spawn_rng(config.seed, "trial", snr_db, trial)
        payload = random_message_bits(config.payload_bits, rng)
        result = session.codec_session().run(payload, rng)
        times.append(sum(t.seconds for t in timed))
        outcomes.append(
            (result.symbols_sent, result.decode_attempts, result.payload_correct)
        )
    return times, outcomes


def test_vectorized_session_speedup_at_figure2_point(benchmark, reporter):
    """>= 10x less decode wall-clock than BubbleDecoder, same outcomes."""
    smoke = bench_smoke()
    snr_db = -5.0 if smoke else -15.0
    n_trials = 1 if smoke else 3

    def measure():
        bubble_times, bubble_outcomes = _run_session_trials(
            BubbleDecoder, snr_db, n_trials
        )
        vec_times, vec_outcomes = _run_session_trials(
            VectorizedBubbleDecoder, snr_db, n_trials
        )
        return bubble_times, bubble_outcomes, vec_times, vec_outcomes

    bubble_times, bubble_outcomes, vec_times, vec_outcomes = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    assert vec_outcomes == bubble_outcomes, (vec_outcomes, bubble_outcomes)
    ratio = sum(bubble_times) / sum(vec_times)
    rows = "\n".join(
        f"trial {i}: {symbols:5d} symbols  bubble {tb * 1e3:8.1f} ms  "
        f"vectorized {tv * 1e3:7.1f} ms  ratio {tb / tv:5.2f}x"
        for i, ((symbols, _a, _c), tb, tv) in enumerate(
            zip(bubble_outcomes, bubble_times, vec_times)
        )
    )
    reporter.add(
        f"Vectorized engine decode wall-clock — Figure-2 config at {snr_db:g} dB",
        f"{rows}\ntotal ratio {ratio:.2f}x"
        + ("" if smoke else f" (pin >= {_MIN_SESSION_SPEEDUP:.0f}x)"),
    )
    if not smoke:
        assert ratio >= _MIN_SESSION_SPEEDUP, (
            f"vectorized engine is only {ratio:.2f}x faster than BubbleDecoder "
            f"at {snr_db:g} dB (pin {_MIN_SESSION_SPEEDUP:.0f}x): "
            f"{sum(bubble_times):.3f}s vs {sum(vec_times):.3f}s over {n_trials} trials"
        )


def _batch_inputs(n_sessions: int, n_subpasses: int):
    """Independent same-shape sessions (distinct seeds) with observations."""
    params = SpinalParams(k=4, c=6)
    encoders = [
        SpinalEncoder(params.with_(seed=1000 + i)) for i in range(n_sessions)
    ]
    channel = AWGNChannel(snr_db=2.0, signal_power=1.0)
    rng = spawn_rng(_SEED, "batch-bench")
    stores = []
    for encoder in encoders:
        message = random_message_bits(16, rng)
        stream = encoder.symbol_stream(message)
        observations = ReceivedObservations(4)
        for _ in range(n_subpasses):
            block = next(stream)
            observations.add_block(block, channel.transmit(block.values, rng))
        stores.append(observations)
    return encoders, stores


def test_batch_decoder_superlinear_per_session_gain(benchmark, reporter):
    """8 sessions batched beat the same 8 decoded one at a time."""
    smoke = bench_smoke()
    n_sessions, n_subpasses = 8, 8
    repeats, rounds = (3, 2) if smoke else (20, 5)
    encoders, stores = _batch_inputs(n_sessions, n_subpasses)
    batch = BatchDecoder(encoders, beam_width=8)
    singles = [BatchDecoder([e], beam_width=8) for e in encoders]

    # Correctness first (and kernel warm-up): both paths must be bit-exact
    # with the from-scratch reference on every session.
    batched_results = batch.decode_all(16, stores)
    single_results = [
        d.decode_all(16, [s])[0] for d, s in zip(singles, stores)
    ]
    for encoder, observations, from_batch, from_single in zip(
        encoders, stores, batched_results, single_results
    ):
        reference = BubbleDecoder(encoder, beam_width=8).decode(16, observations)
        for result in (from_batch, from_single):
            assert np.array_equal(result.message_bits, reference.message_bits)
            assert result.path_cost == reference.path_cost
            assert result.beam_trace == reference.beam_trace

    def measure():
        batched, single = [], []
        for _ in range(rounds):  # interleave so load drift hits both alike
            start = time.perf_counter()
            for _ in range(repeats):
                batch.decode_all(16, stores)
            batched.append((time.perf_counter() - start) / repeats)
            start = time.perf_counter()
            for _ in range(repeats):
                for decoder, observations in zip(singles, stores):
                    decoder.decode_all(16, [observations])
            single.append((time.perf_counter() - start) / repeats)
        return float(np.median(batched)), float(np.median(single))

    batched_s, single_s = benchmark.pedantic(measure, rounds=1, iterations=1)
    fraction = batched_s / single_s
    reporter.add(
        f"BatchDecoder — {n_sessions} sessions stacked vs one at a time (k=4)",
        f"batched  {batched_s * 1e3:7.2f} ms  ({batched_s / n_sessions * 1e3:6.3f} ms/session)\n"
        f"single   {single_s * 1e3:7.2f} ms  ({single_s / n_sessions * 1e3:6.3f} ms/session)\n"
        f"batched/single {fraction:.2f}"
        + ("" if smoke else f" (pin <= {_MAX_BATCH_FRACTION:.2f})"),
    )
    if not smoke:
        assert fraction <= _MAX_BATCH_FRACTION, (
            f"batched decode of {n_sessions} sessions costs {fraction:.2f}x the "
            f"one-at-a-time cost (pin {_MAX_BATCH_FRACTION:.2f}): "
            f"{batched_s * 1e3:.2f} ms vs {single_s * 1e3:.2f} ms"
        )
