"""E13: throughput cost of realistic feedback (Section 6 future work).

Applies perfect, delayed, and per-block feedback models to the measured
per-packet symbol requirements of the spinal code, quantifying the
throughput/latency trade-off the paper defers to future work.
"""

from __future__ import annotations

from _bench_utils import bench_trials

from repro.experiments.feedback import feedback_experiment, feedback_table
from repro.experiments.runner import SpinalRunConfig


def _run():
    config = SpinalRunConfig(n_trials=max(40, bench_trials()))
    return feedback_experiment(snr_values_db=(5.0, 15.0), config=config)


def test_feedback_overhead(benchmark, reporter):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    reporter.add("Feedback protocol overhead (E13)", feedback_table(rows))
