"""E4 (Theorem 2): spinal codes over the binary symmetric channel.

Theorem 2 states the ML decoder achieves BSC capacity; this bench measures
the bit-mode spinal code with the practical decoder across crossover
probabilities and reports the achieved fraction of ``1 − H2(p)``.
"""

from __future__ import annotations

from _bench_utils import bench_trials

from repro.core.params import SpinalParams
from repro.experiments.runner import SpinalRunConfig
from repro.experiments.theorems import theorem2_bsc_experiment, theorem2_table


def _run():
    config = SpinalRunConfig(
        payload_bits=32,
        params=SpinalParams(k=4, bit_mode=True),
        n_trials=bench_trials(),
    )
    return theorem2_bsc_experiment(
        crossover_probabilities=(0.01, 0.02, 0.05, 0.1, 0.2, 0.3), config=config
    )


def test_theorem2_bsc_rates(benchmark, reporter):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    reporter.add("Theorem 2 — BSC rates (E4)", theorem2_table(rows))
