"""Serve-soak benchmarks: the async session service under sustained load.

Two acceptance claims of the serving-at-scale PR are pinned here:

* serving **256 concurrent spinal sessions** through the batched decode
  engine costs **>= 4x less wall-clock** than the one-session-at-a-time
  sequential driver (the same engine with ``batching=False``: identical
  event schedule, identical kernels, decode batches of one) — with a
  **byte-identical delivery log** between the two drivers, and per-session
  outcomes equal to plain ``CodecSession.run`` of each packet alone;
* at smoke scale the engine sustains a deterministic symbol-time throughput
  floor and p99 delivery-latency ceiling, every session delivers, and the
  backpressure bound is never exceeded.  These metrics live on the event
  clock, so the pins hold even on noisy CI machines; the summary is written
  to ``serve_soak_summary.json`` at the repository root for the CI
  ``serve-soak-smoke`` job to archive.

Smoke mode (``REPRO_BENCH_SMOKE=1``) shrinks the soak and skips the
wall-clock ratio pin — CI machines are too noisy for timing ratios; the
correctness claims (byte-identical logs, baseline outcome equality) are
asserted at every scale.
"""

from __future__ import annotations

import json
import pathlib
import time
from dataclasses import replace

from _bench_utils import bench_smoke

from repro.obs import NullTelemetry, Telemetry, set_current, write_all
from repro.serve import SoakConfig, SoakEngine, run_sequential_baseline

_SEED = 20111114
#: Guard on the cost of leaving instrumentation in the hot paths: with the
#: sink disabled, the seams may cost at most this fraction of a smoke soak.
_MAX_DISABLED_OVERHEAD = 0.02
#: Full-mode acceptance: batched vs sequential-driver wall-clock at 256 sessions.
_MIN_SOAK_SPEEDUP = 4.0
#: Smoke-mode deterministic floor on sustained throughput (symbols per tick).
_MIN_SYMBOLS_PER_TICK = 4.0
#: Smoke-mode deterministic ceiling on p99 delivery latency (ticks).
_MAX_P99_LATENCY = 64.0
#: Conservative wall-clock sanity floor (symbols per second, any machine).
_MIN_SYMBOLS_PER_SECOND = 200.0

_SUMMARY_PATH = pathlib.Path(__file__).resolve().parent.parent / "serve_soak_summary.json"
_TELEMETRY_DIR = pathlib.Path(__file__).resolve().parent.parent / "serve_soak_telemetry"

#: The soak workload the >= 4x pin is taken at: long sessions (low SNR,
#: 24-bit payloads) keep the decode stage the dominant cost, and a wide
#: admission window keeps the decode batches large.
_FULL_CONFIG = SoakConfig(
    n_sessions=256,
    max_in_flight=128,
    snr_db=2.0,
    seed=_SEED,
    payload_bits=24,
    k=4,
    c=6,
    beam_width=8,
    max_symbols=512,
)
_SMOKE_CONFIG = SoakConfig(
    n_sessions=32,
    max_in_flight=8,
    snr_db=8.0,
    seed=_SEED,
    payload_bits=16,
    k=4,
    c=6,
    beam_width=8,
    max_symbols=512,
)


def _outcomes_from_baseline(results) -> list[tuple[int, int, int, bool, bool]]:
    """Shape ``run_sequential_baseline`` results like ``SoakResult.outcomes``."""
    return [
        (r.symbols_sent, r.symbols_sent, r.decode_attempts, r.success, r.payload_correct)
        for r in results
    ]


def test_serve_soak_batched_vs_sequential_driver(benchmark, reporter):
    """>= 4x wall-clock vs the one-at-a-time driver, byte-identical log."""
    smoke = bench_smoke()
    config = _SMOKE_CONFIG if smoke else _FULL_CONFIG
    batched_engine = SoakEngine(config)
    sequential_engine = SoakEngine(replace(config, batching=False))

    def measure():
        start = time.perf_counter()
        batched = batched_engine.run()
        batched_s = time.perf_counter() - start
        start = time.perf_counter()
        sequential = sequential_engine.run()
        sequential_s = time.perf_counter() - start
        return batched, batched_s, sequential, sequential_s

    batched, batched_s, sequential, sequential_s = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )

    # Correctness is asserted at every scale: the two drivers must produce
    # the same bytes, and both must reproduce the plain per-session loop.
    assert batched.delivery_log_json() == sequential.delivery_log_json()
    baseline = _outcomes_from_baseline(run_sequential_baseline(config))
    assert batched.outcomes() == baseline

    ratio = sequential_s / batched_s
    reporter.add(
        f"Serve soak — {config.n_sessions} sessions, in-flight "
        f"{config.max_in_flight}, {config.snr_db:g} dB",
        f"batched driver    {batched_s * 1e3:8.1f} ms  "
        f"({batched.total_symbols / batched_s:,.0f} symbols/s, "
        f"mean decode batch {batched.mean_batch_sessions:.1f})\n"
        f"sequential driver {sequential_s * 1e3:8.1f} ms  "
        f"({sequential.total_symbols / sequential_s:,.0f} symbols/s)\n"
        f"speedup {ratio:.2f}x"
        + ("" if smoke else f" (pin >= {_MIN_SOAK_SPEEDUP:.0f}x)"),
    )
    if not smoke:
        assert ratio >= _MIN_SOAK_SPEEDUP, (
            f"batched soak is only {ratio:.2f}x faster than the sequential "
            f"driver (pin {_MIN_SOAK_SPEEDUP:.0f}x): "
            f"{batched_s:.3f}s vs {sequential_s:.3f}s at "
            f"{config.n_sessions} sessions"
        )


def test_serve_soak_sustained_metrics(benchmark, reporter):
    """Deterministic throughput floor and p99 ceiling; JSON artifact."""
    smoke = bench_smoke()
    config = _SMOKE_CONFIG if smoke else _FULL_CONFIG
    engine = SoakEngine(config)

    def measure():
        start = time.perf_counter()
        result = engine.run()
        return result, time.perf_counter() - start

    result, elapsed = benchmark.pedantic(measure, rounds=1, iterations=1)
    summary = result.summary(elapsed_s=elapsed)
    _SUMMARY_PATH.write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n")

    reporter.add(
        f"Serve soak sustained metrics — {config.n_sessions} sessions at "
        f"{config.snr_db:g} dB",
        "\n".join(f"{key:>20}: {value}" for key, value in summary.items()),
    )

    # Backpressure and delivery invariants hold at any scale.
    assert result.peak_in_flight <= config.max_in_flight
    assert result.delivered_fraction == 1.0, (
        f"only {result.n_delivered}/{config.n_sessions} sessions delivered"
    )
    # The symbol-time metrics are deterministic functions of the config, so
    # the floor/ceiling pins are meaningful even on noisy CI machines (the
    # margins absorb tie-break drift across numpy versions).
    if smoke:
        assert summary["symbols_per_tick"] >= _MIN_SYMBOLS_PER_TICK, summary
        assert summary["p99_latency"] <= _MAX_P99_LATENCY, summary
    assert summary["symbols_per_second"] >= _MIN_SYMBOLS_PER_SECOND, summary


class _CountingNull(NullTelemetry):
    """A disabled sink that counts every seam touch.

    Hot paths read ``enabled`` once per seam; cold seams call the no-op
    methods directly.  Both register here as one touch, so ``touches`` is
    an upper bound on the per-run work the disabled path adds.
    """

    __slots__ = ("touches",)

    def __init__(self) -> None:
        self.touches = 0

    @property
    def enabled(self) -> bool:
        self.touches += 1
        return False

    def counter(self, name, value=1, **labels):
        self.touches += 1

    def gauge(self, name, value, **labels):
        self.touches += 1

    def observe(self, name, value, **labels):
        self.touches += 1

    def span(self, name, **labels):
        self.touches += 1
        return super().span(name)

    def bind_clock(self, clock):
        self.touches += 1


def test_serve_soak_disabled_telemetry_overhead(reporter):
    """Disabled-sink seams cost <= 2% of a smoke soak's wall-clock.

    Timing an on/off pair directly would drown the signal in machine noise,
    so the guard is computed: count the seam touches one soak performs
    (counting sink), microbenchmark the per-touch cost of the disabled
    path, and pin ``touches * per_touch`` against the measured soak time.
    """
    config = _SMOKE_CONFIG
    reference = SoakEngine(config).run()
    soak_s = min(
        _timed(lambda: SoakEngine(config).run())[1] for _ in range(3)
    )

    counting = _CountingNull()
    previous = set_current(counting)
    try:
        counted = SoakEngine(config).run()
    finally:
        set_current(previous)
    # The counting sink is still a *disabled* sink: same bytes out.
    assert counted.delivery_log_json() == reference.delivery_log_json()

    null = NullTelemetry()
    n = 200_000
    start = time.perf_counter()
    for _ in range(n):
        if null.enabled:  # the hot-guard shape
            pass
        null.counter("x", 1, hop=0)  # the cold-seam shape
    per_touch = (time.perf_counter() - start) / (2 * n)

    overhead_s = counting.touches * per_touch
    fraction = overhead_s / soak_s
    reporter.add(
        f"Disabled-telemetry overhead — {config.n_sessions}-session smoke soak",
        f"seam touches       {counting.touches}\n"
        f"per-touch cost     {per_touch * 1e9:.0f} ns\n"
        f"estimated overhead {overhead_s * 1e6:.0f} us of {soak_s * 1e3:.1f} ms "
        f"({fraction * 100:.3f}%, pin <= {_MAX_DISABLED_OVERHEAD * 100:.0f}%)",
    )
    assert fraction <= _MAX_DISABLED_OVERHEAD, (
        f"disabled telemetry costs {fraction * 100:.2f}% of the soak "
        f"({counting.touches} touches x {per_touch * 1e9:.0f} ns vs "
        f"{soak_s * 1e3:.1f} ms)"
    )


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def test_serve_soak_telemetry_profile(reporter):
    """Telemetry-on soak: byte-identical log, exported stage profile."""
    smoke = bench_smoke()
    config = _SMOKE_CONFIG if smoke else _FULL_CONFIG
    off = SoakEngine(config).run()

    telemetry = Telemetry()
    previous = set_current(telemetry)
    try:
        on, on_s = _timed(lambda: SoakEngine(config).run())
    finally:
        set_current(previous)
    assert off.delivery_log_json() == on.delivery_log_json()

    paths = write_all(telemetry, _TELEMETRY_DIR)
    decode_us = sum(
        s["dur_us"] for s in telemetry.spans if s["name"] == "serve.decode_batch"
    )
    reporter.add(
        f"Serve soak stage profile — {config.n_sessions} sessions "
        f"(telemetry on, byte-identical log)",
        f"soak wall-clock   {on_s * 1e3:8.1f} ms\n"
        f"decode-batch span {decode_us / 1e3:8.1f} ms over "
        f"{len(telemetry.spans)} batches "
        f"({decode_us / 1e3 / (on_s * 1e3) * 100:.0f}% of wall-clock)\n"
        f"exported: {paths['jsonl']}",
    )
